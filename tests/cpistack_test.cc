/**
 * @file
 * CPI-stack accounting tests: the deterministic stall split, the
 * taxonomy name round-trip, the per-kernel and machine-wide
 * sum-to-total invariants on real robot runs, fast/slow category
 * identity, and fault-injection attribution (spikes must land in
 * `fault`, never inflate the DRAM category).
 */

#include <gtest/gtest.h>

#include "sim/cpistack.hh"
#include "sim/fault.hh"
#include "sim/report.hh"
#include "sim/stats.hh"
#include "sim/system.hh"
#include "workloads/robots.hh"

using namespace tartan::sim;
using namespace tartan::workloads;

namespace {

WorkloadOptions
smallRun()
{
    WorkloadOptions opt;
    opt.scale = 0.35;
    return opt;
}

Cycles
faultCycles(const RunResult &res)
{
    Cycles total = 0;
    for (const auto &k : res.kernels)
        total += k.cpi[CpiCat::Fault];
    return total;
}

} // namespace

TEST(SplitStall, SumsExactlyToStall)
{
    CpiStack comp;
    comp[CpiCat::L2] = 14;
    comp[CpiCat::L3] = 45;
    comp[CpiCat::Dram] = 200;
    const Cycles total = comp.sum();

    // Sweep compressed stalls, including awkward non-divisors.
    for (Cycles stall : {Cycles(0), Cycles(1), Cycles(7), Cycles(13),
                         Cycles(100), Cycles(258), Cycles(259)}) {
        const CpiStack out = splitStall(comp, total, stall);
        EXPECT_EQ(out.sum(), stall) << "stall=" << stall;
    }
}

TEST(SplitStall, UncompressedStallIsExactComponents)
{
    CpiStack comp;
    comp[CpiCat::Fault] = 400;
    comp[CpiCat::PfLate] = 33;
    comp[CpiCat::L2] = 14;
    comp[CpiCat::L3] = 45;
    comp[CpiCat::Dram] = 200;
    const Cycles total = comp.sum();

    // A Dependent (uncompressed) stall pays every component exactly.
    const CpiStack out = splitStall(comp, total, total);
    EXPECT_TRUE(out == comp);
}

TEST(SplitStall, DegenerateInputsYieldZero)
{
    CpiStack comp;
    comp[CpiCat::Dram] = 200;
    EXPECT_EQ(splitStall(comp, comp.sum(), 0).sum(), 0u);
    EXPECT_EQ(splitStall(CpiStack{}, 0, 100).sum(), 0u);
}

TEST(SplitStall, MonotoneNonNegativeShares)
{
    CpiStack comp;
    comp[CpiCat::L2] = 3;
    comp[CpiCat::L3] = 1;
    comp[CpiCat::Dram] = 1000;
    const Cycles total = comp.sum();
    for (Cycles stall = 0; stall <= total; stall += 17) {
        const CpiStack out = splitStall(comp, total, stall);
        for (std::size_t i = 0; i < kNumCpiCats; ++i) {
            EXPECT_LE(out.cat[i], comp.cat[i]);
        }
        EXPECT_EQ(out.sum(), stall);
    }
}

TEST(CpiTaxonomy, NamesRoundTrip)
{
    for (std::size_t i = 0; i < kNumCpiCats; ++i) {
        const CpiCat cat = CpiCat(i);
        EXPECT_EQ(cpiCatFromName(cpiCatName(cat)), cat);
    }
    EXPECT_EQ(cpiCatFromName("bogus"), CpiCat::NumCats);
    EXPECT_EQ(cpiCatFromName(""), CpiCat::NumCats);
    EXPECT_EQ(cpiCatFromName("DRAM"), CpiCat::NumCats) << "names are "
        "case-sensitive schema keys";
}

TEST(CpiTaxonomy, CategoryListMatchesEnumOrder)
{
    EXPECT_EQ(cpiCategoryList(),
              "issue,l1,l2,l3,dram,tlb,pfLate,writeback,fault,npu,"
              "ovec,anl,coherence");
    EXPECT_EQ(kCpiTaxonomyVersion, 2u);
}

TEST(CpiCore, DependentMissDecomposesByLevel)
{
    SysConfig cfg;
    System sys(cfg);
    Core &core = sys.core();

    // First-touch Dependent load: full uncompressed beyond-L1 latency.
    core.load(0x10000, 1, MemDep::Dependent);
    const CpiStack &cpi = core.cpiTotals();
    EXPECT_EQ(cpi[CpiCat::L2], cfg.l2Latency);
    EXPECT_EQ(cpi[CpiCat::L3], cfg.l3Latency);
    EXPECT_EQ(cpi[CpiCat::Dram], cfg.dramLatency);
    EXPECT_EQ(cpi[CpiCat::Fault], 0u);
    EXPECT_EQ(cpi.sum(), core.cycles());
}

TEST(CpiCore, FaultSpikeLandsInFaultNotDram)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse("mem:spike=1.0@400", plan));
    auto inj = plan.makeInjector("cpistack_test");

    SysConfig cfg;
    cfg.faults = inj.get();
    System faulty(cfg);
    faulty.core().load(0x10000, 1, MemDep::Dependent);

    SysConfig clean_cfg;
    System clean(clean_cfg);
    clean.core().load(0x10000, 1, MemDep::Dependent);

    const CpiStack &fc = faulty.core().cpiTotals();
    const CpiStack &cc = clean.core().cpiTotals();
    // The spike is wholly in `fault`; the hierarchy categories are
    // untouched relative to the clean machine.
    EXPECT_EQ(fc[CpiCat::Fault], 400u);
    EXPECT_EQ(cc[CpiCat::Fault], 0u);
    EXPECT_EQ(fc[CpiCat::Dram], cc[CpiCat::Dram]);
    EXPECT_EQ(fc[CpiCat::L2], cc[CpiCat::L2]);
    EXPECT_EQ(fc[CpiCat::L3], cc[CpiCat::L3]);
    EXPECT_EQ(fc.sum(), faulty.core().cycles());
}

TEST(CpiCore, StatsInvariantsHoldAfterMixedWork)
{
    SysConfig cfg;
    System sys(cfg);
    StatsRegistry registry;
    sys.registerStats(registry);

    Core &core = sys.core();
    const auto knav = core.registerKernel("nav");
    const auto kmap = core.registerKernel("map");
    core.setKernel(knav);
    core.exec(1000);
    core.load(0x20000, 2, MemDep::Dependent);
    core.setKernel(kmap);
    core.exec(37); // sub-issue-width remainder exercises the flush
    core.stall(250, CpiCat::Npu);
    core.setKernel(0);

    // verify() panics if any per-kernel or machine-wide sum-to-total
    // invariant is broken; reaching the asserts below means they hold.
    registry.verify();
    Cycles kernel_sum = 0;
    for (const auto &k : core.kernels()) {
        EXPECT_EQ(k.cpi.sum(), k.cycles) << "kernel " << k.name;
        kernel_sum += k.cycles;
    }
    EXPECT_EQ(kernel_sum, core.cycles());
    EXPECT_EQ(core.cpiTotals().sum(), core.cycles());
    EXPECT_EQ(core.cpiTotals()[CpiCat::Npu], 250u);
}

TEST(CpiWorkload, PerKernelStacksSumToCycles)
{
    const RunResult res = runDeliBot(MachineSpec::baseline(), smallRun());
    ASSERT_FALSE(res.kernels.empty());
    Cycles kernel_sum = 0;
    for (const auto &k : res.kernels) {
        EXPECT_EQ(k.cpi.sum(), k.cycles) << "kernel " << k.name;
        kernel_sum += k.cycles;
    }
    EXPECT_EQ(kernel_sum, res.workCycles);
}

TEST(CpiWorkload, ReservedCategoriesStayStructurallyZero)
{
    const RunResult res = runDeliBot(MachineSpec::tartan(), smallRun());
    for (const auto &k : res.kernels) {
        EXPECT_EQ(k.cpi[CpiCat::Tlb], 0u) << "kernel " << k.name;
        EXPECT_EQ(k.cpi[CpiCat::Writeback], 0u) << "kernel " << k.name;
        EXPECT_EQ(k.cpi[CpiCat::Anl], 0u) << "kernel " << k.name;
    }
}

TEST(CpiWorkload, FastAndSlowPathsChargeIdenticalCategories)
{
    WorkloadOptions fast = smallRun();
    WorkloadOptions slow = smallRun();
    slow.fastAccessPath = false;

    const RunResult a = runDeliBot(MachineSpec::baseline(), fast);
    const RunResult b = runDeliBot(MachineSpec::baseline(), slow);
    ASSERT_EQ(a.kernels.size(), b.kernels.size());
    for (std::size_t i = 0; i < a.kernels.size(); ++i) {
        EXPECT_EQ(a.kernels[i].name, b.kernels[i].name);
        EXPECT_EQ(a.kernels[i].cycles, b.kernels[i].cycles);
        EXPECT_TRUE(a.kernels[i].cpi == b.kernels[i].cpi)
            << "kernel " << a.kernels[i].name;
    }
}

namespace {

/** Minimal schema-valid bench document with one CPI row. */
std::string
benchDocWithStack(const std::string &stack_json,
                  const std::string &version = "2")
{
    std::string cats;
    for (std::size_t i = 0; i < kNumCpiCats; ++i) {
        if (i)
            cats += ", ";
        cats += '"';
        cats += cpiCatName(CpiCat(i));
        cats += '"';
    }
    return "{\"bench\": \"b\", \"manifest\": {\"git\": \"g\", "
           "\"timestamp\": \"t\", \"paper\": \"p\"}, \"config\": {}, "
           "\"metrics\": {}, \"kernels\": [], \"cpi\": "
           "{\"taxonomyVersion\": " + version + ", \"categories\": [" +
           cats + "], \"rows\": [{\"run\": \"r\", \"kernel\": \"k\", "
           "\"cycles\": 10, \"stack\": " + stack_json + "}]}}";
}

/** A stack JSON covering every category; @p issue fills category 0. */
std::string
fullStack(Cycles issue)
{
    std::string out = "{\"issue\": " + std::to_string(issue);
    for (std::size_t i = 1; i < kNumCpiCats; ++i) {
        out += ", \"";
        out += cpiCatName(CpiCat(i));
        out += "\": 0";
    }
    return out + "}";
}

} // namespace

TEST(CpiSchema, ValidatorAcceptsWellFormedStack)
{
    std::string err;
    EXPECT_TRUE(validateBenchJson(benchDocWithStack(fullStack(10)),
                                  &err)) << err;
}

TEST(CpiSchema, ValidatorRejectsBadStacks)
{
    std::string err;
    // Unknown category key.
    EXPECT_FALSE(validateBenchJson(
        benchDocWithStack("{\"bogus\": 10}"), &err));
    EXPECT_NE(err.find("bogus"), std::string::npos) << err;
    // Missing categories (partial stack).
    err.clear();
    EXPECT_FALSE(validateBenchJson(
        benchDocWithStack("{\"issue\": 10}"), &err));
    EXPECT_NE(err.find("missing categories"), std::string::npos) << err;
    // Stack that does not sum to the row's cycles.
    err.clear();
    EXPECT_FALSE(validateBenchJson(
        benchDocWithStack(fullStack(7)), &err));
    EXPECT_NE(err.find("sum"), std::string::npos) << err;
    // Foreign taxonomy version.
    err.clear();
    EXPECT_FALSE(validateBenchJson(
        benchDocWithStack(fullStack(10), "99"), &err));
    EXPECT_NE(err.find("taxonomyVersion"), std::string::npos) << err;
}

TEST(CpiWorkload, InjectedSpikesShowUpInFaultCategory)
{
    const RunResult clean =
        runDeliBot(MachineSpec::baseline(), smallRun());
    EXPECT_EQ(faultCycles(clean), 0u);

    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse("mem:spike=1.0@400", plan));
    auto inj = plan.makeInjector("cpistack_test");
    WorkloadOptions opt = smallRun();
    opt.faults = inj.get();
    const RunResult faulty = runDeliBot(MachineSpec::baseline(), opt);

    const Cycles spikes = faultCycles(faulty);
    EXPECT_GT(spikes, 0u);
    // Each kernel's stack still partitions its cycles exactly even
    // with the extra fault component in every miss.
    for (const auto &k : faulty.kernels)
        EXPECT_EQ(k.cpi.sum(), k.cycles) << "kernel " << k.name;
}
