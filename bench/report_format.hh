/**
 * @file
 * Metric-cell formatting shared by the RESULTS.md generator and its
 * tests. Kept separate from report_md.cc so the rendering of degenerate
 * metrics (JSON null from a non-finite value) is unit-testable.
 */

#ifndef TARTAN_BENCH_REPORT_FORMAT_HH
#define TARTAN_BENCH_REPORT_FORMAT_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

#include "sim/json.hh"

namespace tartan::bench {

/** Format a metric value the way the summary table wants it. */
inline std::string
formatNumber(double v)
{
    char buf[64];
    if (v == static_cast<std::int64_t>(v) && std::abs(v) < 1e15)
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof buf, "%.4g", v);
    return buf;
}

/**
 * Format a metric Value. Non-finite metrics (e.g. a geomean with no
 * positive inputs) are emitted as JSON null and must surface as "n/a",
 * not as a fake 0.
 */
inline std::string
formatMetric(const sim::json::Value &v)
{
    return v.isNumber() ? formatNumber(v.number) : "n/a";
}

} // namespace tartan::bench

#endif // TARTAN_BENCH_REPORT_FORMAT_HH
