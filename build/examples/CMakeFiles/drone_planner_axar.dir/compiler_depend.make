# Empty compiler generated dependencies file for drone_planner_axar.
# This may be replaced when dependencies are built.
