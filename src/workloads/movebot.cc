/**
 * @file
 * MoveBot: a LoCoBot-like arm. RRT planning in 5-DoF configuration
 * space; cuboid-cuboid collision detection (CCCD) sharded over 8
 * threads, which moves the bottleneck to the nearest-neighbour search
 * of RRT (~45% in the paper). PID control. Threads: 1 -> 8 -> 1.
 */

#include "workloads/robots.hh"

#include <algorithm>
#include <cmath>

#include "robotics/control.hh"
#include "robotics/kdtree.hh"
#include "robotics/lsh.hh"
#include "robotics/rrt.hh"

namespace tartan::workloads {

using namespace tartan::robotics;

namespace {

/** Forward-kinematics-lite: 5-DoF configuration to 3 link cuboids. */
void
configToLinks(Mem &mem, const float *q, Cuboid *links)
{
    double x = 0.5, y = 0.5, z = 0.0;
    double yaw = 2.0 * kPi * q[0];
    double pitch = kPi * (q[1] - 0.5);
    for (int link = 0; link < 3; ++link) {
        const double len = 0.12;
        x += len * std::cos(yaw) * std::cos(pitch);
        y += len * std::sin(yaw) * std::cos(pitch);
        z += len * std::sin(pitch);
        links[link].center = Vec3{x, y, z};
        links[link].halfExtent = Vec3{0.05, 0.05, 0.05};
        yaw += (q[2 + link > 4 ? 4 : 2 + link] - 0.5) * kPi;
        pitch *= 0.7;
        mem.execFp(20);
    }
}

std::unique_ptr<NnsBackend>
makeBackend(NnsKind kind, const float *store, std::uint32_t dim,
            std::uint32_t stride, std::uint64_t seed,
            tartan::sim::Arena *arena)
{
    // Bucket width tuned so the paper's accuracy criterion holds
    // (robot operation within 1% of brute force) while RRT's
    // clustered trees still split across buckets.
    LshConfig cfg;
    cfg.bucketWidth = 0.4f;
    cfg.seed = seed;
    switch (kind) {
      case NnsKind::Brute:
        return std::make_unique<BruteForceNns>(store, dim, stride);
      case NnsKind::KdTree:
        return std::make_unique<KdTreeNns>(store, dim, stride, arena);
      case NnsKind::Lsh:
        return std::make_unique<LshNns>(store, dim, cfg, false, stride,
                                        arena);
      case NnsKind::Vln:
        return std::make_unique<LshNns>(store, dim, cfg, true, stride,
                                        arena);
    }
    return nullptr;
}

} // namespace

RunResult
runMoveBot(const MachineSpec &spec, const WorkloadOptions &opt)
{
    RunResult result;
    result.robot = "MoveBot";

    Machine machine(spec, opt);
    auto &core = machine.core();
    auto &mem = machine.mem();
    Pipeline pipeline(core);
    tartan::sim::Rng rng(opt.seed + 2);
    tartan::sim::Arena arena(16ull << 20);
    machine.mapArena(arena);

    const auto k_nns = core.registerKernel("nns");
    const auto k_cccd = core.registerKernel("cccd");
    const auto k_control = core.registerKernel("pid");

    // Obstacle field: cuboids scattered through the workspace with a
    // clearance bubble around the arm base so the configuration space
    // stays navigable (~17% of it is in collision).
    const std::size_t num_obstacles = 36;
    Cuboid *obstacles = arena.alloc<Cuboid>(num_obstacles);
    for (std::size_t o = 0; o < num_obstacles; ++o) {
        Vec3 c{rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9),
               rng.uniform(-0.3, 0.4)};
        while (dist3(c, Vec3{0.5, 0.5, 0.0}) < 0.28)
            c = Vec3{rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9),
                     rng.uniform(-0.3, 0.4)};
        obstacles[o].center = c;
        obstacles[o].halfExtent =
            Vec3{rng.uniform(0.015, 0.045), rng.uniform(0.015, 0.045),
                 rng.uniform(0.015, 0.045)};
    }

    RrtConfig rrt_cfg;
    rrt_cfg.dim = 5;
    rrt_cfg.strideFloats = 16;  // 64 B node records (config + caches)
    rrt_cfg.stepSize = 0.08;
    rrt_cfg.goalTolerance = 0.2;
    rrt_cfg.goalBias = 0.15;
    rrt_cfg.maxIterations = std::max<std::uint32_t>(
        200, static_cast<std::uint32_t>(3000 * opt.scale));
    rrt_cfg.maxNodes = rrt_cfg.maxIterations + 1;
    rrt_cfg.exploreFully = true;

    const NnsKind kind =
        opt.nnsExplicit
            ? opt.nns
            : (opt.tier == SoftwareTier::Legacy ? NnsKind::Brute
                                                : NnsKind::Vln);

    // Wrap the backend so NNS work lands in its own kernel bucket.
    struct TaggedNns : NnsBackend {
        NnsBackend &inner;
        tartan::sim::Core &core;
        std::uint32_t kernel;
        TaggedNns(NnsBackend &b, tartan::sim::Core &c, std::uint32_t k)
            : NnsBackend(nullptr, b.dim()), inner(b), core(c), kernel(k)
        {
        }
        void
        insert(Mem &m, std::uint32_t id) override
        {
            ScopedKernel scope(core, kernel);
            inner.insert(m, id);
        }
        std::int32_t
        nearest(Mem &m, const float *q) override
        {
            ScopedKernel scope(core, kernel);
            return inner.nearest(m, q);
        }
        void
        radius(Mem &m, const float *q, float eps,
               std::vector<std::uint32_t> &out) override
        {
            ScopedKernel scope(core, kernel);
            inner.radius(m, q, eps, out);
        }
        const char *name() const override { return inner.name(); }
    };

    // A three-query mission: the arm visits a sequence of poses.
    float waypoints[4][5] = {
        {0.05f, 0.30f, 0.5f, 0.5f, 0.5f},
        {0.92f, 0.85f, 0.15f, 0.8f, 0.2f},
        {0.15f, 0.88f, 0.85f, 0.2f, 0.8f},
        {0.85f, 0.08f, 0.25f, 0.7f, 0.35f},
    };

    // Ensure both endpoints are collision-free: perturb until clear
    // (environment setup, not simulated work).
    {
        Mem untraced;
        Cuboid probe[3];
        auto clear = [&](float *q) {
            configToLinks(untraced, q, probe);
            return !cuboidsCollide(untraced, probe, 3, obstacles, 0,
                                   num_obstacles);
        };
        tartan::sim::Rng fix_rng(opt.seed + 77);
        for (auto &q : waypoints)
            while (!clear(q))
                for (int d = 0; d < 5; ++d)
                    q[d] = static_cast<float>(
                        std::clamp(q[d] + fix_rng.uniform(-0.08, 0.08),
                                   0.05, 0.95));
    }

    // CCCD is sharded over 8 threads; see below for the wall-clock
    // discount that models the parallel planning stage.
    Cuboid links[3];
    auto is_blocked = [&](Mem &m, const float *q) {
        ScopedKernel scope(core, k_cccd);
        configToLinks(m, q, links);
        return cuboidsCollide(m, links, 3, obstacles, 0, num_obstacles);
    };

    tartan::sim::GuardedSensor joint_sensor(opt.faults, -1.0, 1.0);
    double reached = 0.0;
    double total_nodes = 0.0;
    double total_path = 0.0;
    for (int query = 0; query < 3; ++query) {
        ScopedPhase roi(core, "query " + std::to_string(query));
        // Each query grows a fresh tree and index.
        RrtPlanner rrt(rrt_cfg, arena);
        auto nns = makeBackend(kind, rrt.store(), rrt_cfg.dim,
                               rrt.stride(), opt.seed + query, &arena);
        TaggedNns tagged(*nns, core, k_nns);

        RrtResult plan;
        pipeline.serial([&] {
            plan = rrt.plan(mem, tagged, waypoints[query],
                            waypoints[query + 1], rng, is_blocked);
        });

        // --- Control: PID servo along the found path ----------------
        pipeline.serial([&] {
            ScopedKernel scope(core, k_control);
            Pid joint_pid(1.2, 0.1, 0.2);
            for (std::size_t w = 1; w < plan.path.size(); ++w) {
                for (std::uint32_t d = 0; d < rrt_cfg.dim; ++d) {
                    // Joint encoders pass through the fault layer; the
                    // per-joint error is bounded by the unit c-space.
                    const float err = static_cast<float>(joint_sensor.read(
                        rrt.node(plan.path[w])[d] -
                        rrt.node(plan.path[w - 1])[d]));
                    joint_pid.step(mem, err, 0.05);
                }
            }
        });
        reached += plan.reachedGoal ? 1.0 : 0.0;
        total_nodes += plan.nodes;
        total_path += plan.pathLength;
    }

    summarize(machine, pipeline, result);

    // The planning stage runs CCCD on 8 threads (4 cores): discount
    // its wall-clock contribution accordingly.
    discountKernels(core, result, {k_cccd}, 4);

    result.metrics["reachedGoals"] = reached;
    result.metrics["treeNodes"] = total_nodes;
    result.metrics["pathLength"] = total_path;
    if (opt.faults) {
        result.metrics["faultsInjected"] =
            double(opt.faults->stats().total());
        result.metrics["recoveries"] = double(joint_sensor.recoveries());
    }
    return result;
}

} // namespace tartan::workloads
