file(REMOVE_RECURSE
  "CMakeFiles/tartan_sim.dir/bingo.cc.o"
  "CMakeFiles/tartan_sim.dir/bingo.cc.o.d"
  "CMakeFiles/tartan_sim.dir/cache.cc.o"
  "CMakeFiles/tartan_sim.dir/cache.cc.o.d"
  "CMakeFiles/tartan_sim.dir/core.cc.o"
  "CMakeFiles/tartan_sim.dir/core.cc.o.d"
  "CMakeFiles/tartan_sim.dir/memsystem.cc.o"
  "CMakeFiles/tartan_sim.dir/memsystem.cc.o.d"
  "CMakeFiles/tartan_sim.dir/system.cc.o"
  "CMakeFiles/tartan_sim.dir/system.cc.o.d"
  "libtartan_sim.a"
  "libtartan_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tartan_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
