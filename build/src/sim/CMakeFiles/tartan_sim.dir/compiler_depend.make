# Empty compiler generated dependencies file for tartan_sim.
# This may be replaced when dependencies are built.
