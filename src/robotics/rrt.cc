/**
 * @file
 * RRT planner non-template pieces.
 */

#include "robotics/rrt.hh"

#include <cmath>

#include "sim/logging.hh"

namespace tartan::robotics {

RrtPlanner::RrtPlanner(const RrtConfig &config, tartan::sim::Arena &arena)
    : cfg(config),
      coords(arena.alloc<float>(
          static_cast<std::size_t>(config.maxNodes) *
          (config.strideFloats ? config.strideFloats : config.dim)))
{
    parents.reserve(cfg.maxNodes);
}

std::uint32_t
RrtPlanner::addNode(Mem &mem, NnsBackend &nns, const float *q,
                    std::uint32_t parent)
{
    TARTAN_ASSERT(nodeCount < cfg.maxNodes, "RRT node capacity exceeded");
    const std::uint32_t id = nodeCount++;
    float *dst = coords + static_cast<std::size_t>(id) * stride();
    for (std::uint32_t d = 0; d < cfg.dim; ++d)
        mem.storev(dst + d, q[d], nns_pc::brute);
    // The remaining record fields cache FK/collision metadata.
    for (std::uint32_t d = cfg.dim; d < stride(); ++d)
        dst[d] = 0.0f;
    parents.push_back(id == 0 ? 0 : parent);
    nns.insert(mem, id);
    return id;
}

double
RrtPlanner::nodeDistance(std::uint32_t a, std::uint32_t b) const
{
    const float *pa = node(a);
    const float *pb = node(b);
    double acc = 0.0;
    for (std::uint32_t d = 0; d < cfg.dim; ++d) {
        const double diff = pa[d] - pb[d];
        acc += diff * diff;
    }
    return std::sqrt(acc);
}

} // namespace tartan::robotics
