/**
 * @file
 * Ray casting over 2D occupancy grids (paper §IV, Fig. 2).
 *
 * A ray starts at the laser origin, advances in steps of length d along
 * orientation theta, and reports the distance to the first occupied
 * cell. Following the paper, the fractional (x, y) position is
 * flattened to a fractional array index (y * W + x) whose floor selects
 * the memory cell, which makes the access stream an *oriented* pattern
 * with stride dy * W + dx — the pattern OVEC vectorises.
 *
 * The optional trilinear/bilinear interpolation mode reproduces the
 * high-accuracy variant targeted by Intel's ray-casting accelerator
 * (paper Fig. 7).
 */

#ifndef TARTAN_ROBOTICS_RAYCAST_HH
#define TARTAN_ROBOTICS_RAYCAST_HH

#include <cstdint>
#include <unordered_set>

#include "robotics/grid.hh"
#include "robotics/oriented.hh"

namespace tartan::robotics {

/** Load-site identifiers for the ray-casting kernel. */
namespace raycast_pc {
inline constexpr PcId map = 100;
inline constexpr PcId interp = 101;
} // namespace raycast_pc

/** Ray-casting parameters. */
struct RayConfig {
    double step = 1.0;       //!< step length d in cells
    double maxRange = 200.0; //!< give up after this many cells
    bool interpolate = false;
    /** Interpolation executed in software or by an Intel-style ASIC. */
    bool interpOnAccelerator = false;
};

/**
 * Local voxel storage of the Intel accelerator model: each distinct
 * cell pays the cache latency once, repeats are serviced locally.
 */
class LocalVoxelStorage
{
  public:
    /** @return true if the cell was already resident (load is free). */
    bool
    lookup(std::size_t cell)
    {
        return !resident.insert(cell).second;
    }

    void clear() { resident.clear(); }
    std::size_t size() const { return resident.size(); }

  private:
    std::unordered_set<std::size_t> resident;
};

/**
 * Cast one ray; returns the travelled distance (in cells) to the first
 * obstacle, or cfg.maxRange when nothing is hit.
 *
 * @param engine oriented-load engine (scalar / OVEC / Gather / RACOD)
 * @param lvs optional Intel-style local voxel storage (nullptr: absent)
 */
double castRay(Mem &mem, const OccupancyGrid2D &grid, double ox, double oy,
               double theta, const RayConfig &cfg, OrientedEngine &engine,
               LocalVoxelStorage *lvs = nullptr);

/**
 * Reference implementation used by tests: same flattening semantics,
 * no batching, no instrumentation.
 */
double castRayReference(const OccupancyGrid2D &grid, double ox, double oy,
                        double theta, const RayConfig &cfg);

} // namespace tartan::robotics

#endif // TARTAN_ROBOTICS_RAYCAST_HH
