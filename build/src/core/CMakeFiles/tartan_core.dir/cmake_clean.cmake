file(REMOVE_RECURSE
  "CMakeFiles/tartan_core.dir/anl.cc.o"
  "CMakeFiles/tartan_core.dir/anl.cc.o.d"
  "CMakeFiles/tartan_core.dir/area.cc.o"
  "CMakeFiles/tartan_core.dir/area.cc.o.d"
  "CMakeFiles/tartan_core.dir/npu.cc.o"
  "CMakeFiles/tartan_core.dir/npu.cc.o.d"
  "CMakeFiles/tartan_core.dir/ovec.cc.o"
  "CMakeFiles/tartan_core.dir/ovec.cc.o.d"
  "libtartan_core.a"
  "libtartan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tartan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
