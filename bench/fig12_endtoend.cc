/**
 * @file
 * Fig. 12 reproduction: end-to-end Tartan speedup over the upgraded
 * baseline for the three software tiers — legacy software (hardware-
 * only techniques apply), software optimised for Tartan without
 * approximation, and approximable software (NPU enabled).
 */

#include "bench_util.hh"

using namespace tartan::bench;
using namespace tartan::workloads;

int
main()
{
    header("fig12_endtoend — Tartan end-to-end speedups",
           "legacy 1.2x (up to 1.4x); optimized non-approximable 1.61x "
           "(up to 3.54x); approximable 2.11x (up to 3.87x)");

    std::printf("%-10s %12s %12s %12s\n", "robot", "legacy",
                "optimized", "approx");

    std::vector<double> legacy_s, opt_s, approx_s;
    for (const auto &robot : robotSuite()) {
        const auto base = robot.run(MachineSpec::baseline(),
                                    options(SoftwareTier::Legacy));
        const double base_cycles = double(base.wallCycles);

        const auto legacy = robot.run(MachineSpec::tartan(),
                                      options(SoftwareTier::Legacy));
        const auto optimized = robot.run(
            MachineSpec::tartan(), options(SoftwareTier::Optimized));
        const auto approx = robot.run(
            MachineSpec::tartan(), options(SoftwareTier::Approximate));

        const double sl = speedup(base_cycles, double(legacy.wallCycles));
        const double so =
            speedup(base_cycles, double(optimized.wallCycles));
        const double sa =
            speedup(base_cycles, double(approx.wallCycles));
        std::printf("%-10s %11.2fx %11.2fx %11.2fx\n", robot.name, sl,
                    so, sa);
        legacy_s.push_back(sl);
        opt_s.push_back(so);
        approx_s.push_back(sa);
    }

    std::printf("%-10s %11.2fx %11.2fx %11.2fx   <- GMean "
                "(paper: 1.2x / 1.61x / 2.11x)\n",
                "GMean", geomean(legacy_s), geomean(opt_s),
                geomean(approx_s));
    std::printf("\nShape check: approx >= optimized >= legacy >= ~1 for "
                "every robot; NPU-less robots show approx == "
                "optimized.\n");
    return 0;
}
