/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: the
 * BenchReporter every driver routes its results through (human table on
 * stdout plus a machine-readable BENCH_<name>.json), normalisation and
 * geometric means, the standard per-run metric snapshot, and the
 * RunPool plumbing that executes every driver's independent runs
 * concurrently. Every bench prints the paper's expected shape next to
 * the measured values so the output can be diffed against
 * EXPERIMENTS.md.
 *
 * Parallel-run pattern: a driver builds its complete list of campaign
 * cells (each capturing its own MachineSpec / WorkloadOptions / trace
 * session by value), hands them to runAll(), and only then formats
 * tables from the in-submission-order results. All printing happens on
 * the main thread after the gather, so stdout and the BENCH manifest
 * are byte-identical whatever TARTAN_JOBS is.
 *
 * The campaign-aware runAll(rep, pool, cells) overload routes every
 * cell through sim::CampaignRunner: journal replay under
 * TARTAN_RESUME, verified result-cache hits under TARTAN_CACHE_DIR,
 * watchdog deadlines under TARTAN_TIMEOUT with TARTAN_RETRIES
 * re-attempts, and quarantine (placeholder result + manifest failure
 * row) instead of sweep abort. Result types round-trip through
 * CellCodec so a replayed payload is byte-identical to a fresh one.
 */

#ifndef TARTAN_BENCH_UTIL_HH
#define TARTAN_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/campaign.hh"
#include "sim/capture.hh"
#include "sim/checksum.hh"
#include "sim/env.hh"
#include "sim/logging.hh"
#include "sim/report.hh"
#include "sim/runpool.hh"
#include "sim/watchdog.hh"
#include "workloads/cellcodec.hh"
#include "workloads/replay.hh"
#include "workloads/robots.hh"

namespace tartan::bench {

using tartan::sim::BenchReporter;
using tartan::sim::RunPool;
using workloads::MachineSpec;
using workloads::RobotFn;
using workloads::RunResult;
using workloads::SoftwareTier;
using workloads::WorkloadOptions;

/**
 * Geometric mean of the positive entries of @p values. Non-positive
 * entries would put log(0) = -inf (or a NaN) into the accumulator and
 * silently poison the whole mean, so they are skipped with a warn() —
 * a degenerate run should never erase every other robot's result.
 *
 * When *every* entry is skipped (or @p values is empty) there is no
 * mean to report: the result is NaN, which the JSON writer emits as
 * null and report_md renders as "n/a". The historical 0.0 here was a
 * silent lie — it flowed into normalised columns and speedup() as a
 * fake baseline.
 */
inline double
geomean(const std::vector<double> &values)
{
    double acc = 0.0;
    std::size_t used = 0;
    for (double v : values) {
        if (!(v > 0.0)) {
            sim::warn("bench: geomean skipping non-positive value %g", v);
            continue;
        }
        acc += std::log(v);
        ++used;
    }
    if (!used) {
        sim::warn("bench: geomean of no positive values; reporting NaN");
        return std::nan("");
    }
    return std::exp(acc / static_cast<double>(used));
}

/**
 * Normalised value helper (baseline / value = speedup). A non-positive
 * @p value means the run recorded no time at all — report it instead of
 * returning a silent 0.0 that downstream means would choke on.
 */
inline double
speedup(double baseline, double value)
{
    if (!(value > 0.0)) {
        sim::warn("bench: speedup of a non-positive run time %g "
                  "(baseline %g); reporting 0",
                  value, baseline);
        return 0.0;
    }
    return baseline / value;
}

/** Default per-bench workload scale (kept small for sweep benches). */
inline WorkloadOptions
options(SoftwareTier tier, double scale = 1.0, std::uint64_t seed = 42)
{
    WorkloadOptions opt;
    opt.tier = tier;
    opt.scale = scale;
    opt.seed = seed;
    return opt;
}

/**
 * Attach a trace session (possibly null, i.e. TARTAN_TRACE unset) to a
 * WorkloadOptions value. Keeps per-run instrumentation to one line:
 *
 *   auto t = rep.makeTrace("DeliBot_B");
 *   auto res = robot.run(spec, traced(options(tier), t));
 *   t.reset();  // flush TRACE_*.json before the next run
 */
inline WorkloadOptions
traced(WorkloadOptions opt,
       const std::unique_ptr<sim::TraceSession> &session)
{
    opt.trace = session.get();
    return opt;
}

/**
 * One campaign cell: a labelled, content-addressed run closure. The
 * label is the human identity (journal rows, failure reports); the
 * (configHash, seed) pair is the machine identity that keys the
 * journal and the result cache. Everything inside fn is captured by
 * value, so the closure owns its whole configuration and shares
 * nothing with its siblings — which is also what makes a retry or a
 * replay reproduce the identical payload.
 */
template <typename R>
struct Cell {
    std::string label;
    std::uint64_t configHash = 0;
    std::uint64_t seed = 0;
    std::function<R()> fn;
};

/**
 * Exact payload codec for a cell-result type. The primary template is
 * the "no codec" marker: such cells still get watchdog / retry /
 * quarantine hardening, but are never journaled or cached (their
 * results travel through an in-memory side channel instead), so
 * resume and cache hits re-simulate them. Specialisations must
 * round-trip exactly — decode(encode(x)) == x bit for bit — and
 * expose a schema() that changes whenever the encoding does.
 */
template <typename R>
struct CellCodec {
    static constexpr bool available = false;
    /** Schema tag (keys journals/caches); 0 for the no-codec marker. */
    static std::uint64_t schema() { return 0; }
    static std::string encode(const R &) { return {}; }
    static bool
    decode(const std::string &, R &, std::string * = nullptr)
    {
        return false;
    }
};

/** RunResult codec: the exact encoder from workloads/cellcodec. */
template <>
struct CellCodec<RunResult> {
    static constexpr bool available = true;
    static std::uint64_t schema() { return workloads::cellSchemaVersion(); }
    static std::string
    encode(const RunResult &res)
    {
        return workloads::encodeRunResult(res);
    }
    static bool
    decode(const std::string &payload, RunResult &out,
           std::string *err = nullptr)
    {
        return workloads::decodeRunResult(payload, out, err);
    }
};

/**
 * Codec for plain double vectors (tab02's error sweeps): a JSON array
 * of %a hexfloat strings, exact for every value including nan/inf.
 */
template <>
struct CellCodec<std::vector<double>> {
    static constexpr bool available = true;
    static std::uint64_t
    schema()
    {
        // Distinct schema space from the RunResult codec so the two
        // payload families never share a journal file or cache entry.
        return sim::fnv1a64("tartan-vecd-codec-v1");
    }
    static std::string
    encode(const std::vector<double> &values)
    {
        std::string out = "{\"v\":\"1\",\"d\":[";
        for (std::size_t i = 0; i < values.size(); ++i) {
            out += (i ? ",\"" : "\"");
            out += workloads::encodeDouble(values[i]);
            out += "\"";
        }
        out += "]}";
        return out;
    }
    static bool
    decode(const std::string &payload, std::vector<double> &out,
           std::string *err = nullptr)
    {
        sim::json::Value doc;
        if (!sim::json::parse(payload, doc, err) || !doc.isObject())
            return false;
        const sim::json::Value *version = doc.find("v");
        const sim::json::Value *data = doc.find("d");
        if (!version || !version->isString() || version->string != "1" ||
            !data || !data->isArray()) {
            if (err && err->empty())
                *err = "bad vector payload envelope";
            return false;
        }
        out.clear();
        out.reserve(data->array.size());
        for (const sim::json::Value &v : data->array) {
            double d = 0.0;
            if (!v.isString() || !workloads::decodeDouble(v.string, d)) {
                if (err && err->empty())
                    *err = "bad vector payload element";
                return false;
            }
            out.push_back(d);
        }
        return true;
    }
};

/**
 * Build one robot-run cell. The label doubles as the cell's
 * human-readable identity and as part of its content address
 * (together with every result-relevant spec/options field); @p salt
 * carries driver dimensions the spec cannot see, e.g. a fault spec.
 */
inline Cell<RunResult>
cell(std::string label, RobotFn run, MachineSpec spec, WorkloadOptions opt,
     std::string_view salt = {})
{
    Cell<RunResult> c;
    c.configHash = workloads::cellConfigHash(label, spec, opt, salt);
    c.seed = opt.seed;
    c.label = std::move(label);
    c.fn = [run, spec = std::move(spec), opt]() { return run(spec, opt); };
    return c;
}

/**
 * Build one *traced* robot-run cell. The TraceSession is created
 * here, on the calling thread and in submission order, so the
 * reporter's manifest lists trace paths deterministically; the
 * closure owns the session (shared_ptr because std::function must
 * stay copyable) and finalizes it right after the run, exactly where
 * the serial code called t.reset().
 */
inline Cell<RunResult>
cell(BenchReporter &rep, std::string label, RobotFn run, MachineSpec spec,
     WorkloadOptions opt, std::string_view salt = {})
{
    std::shared_ptr<sim::TraceSession> trace = rep.makeTrace(label);
    Cell<RunResult> c;
    c.configHash = workloads::cellConfigHash(label, spec, opt, salt);
    c.seed = opt.seed;
    c.label = std::move(label);
    c.fn = [run, spec = std::move(spec), opt,
            trace = std::move(trace)]() {
        WorkloadOptions traced_opt = opt;
        traced_opt.trace = trace.get();
        RunResult res = run(spec, traced_opt);
        if (trace)
            trace->finalize();
        return res;
    };
    return c;
}

/**
 * One shared capture of a (robot, machine, options, seed) cell,
 * recorded at most once per process and handed out to every replayed
 * sibling cell. Thread-safe: the first acquire() runs (or loads) the
 * capture under a mutex while later callers wait — with their cell
 * watchdogs suspended, because queueing behind a sibling's capture is
 * not *their* work and must not eat their TARTAN_TIMEOUT budget.
 *
 * With TARTAN_CAPTURE_DIR set, captures persist as content-addressed
 * `capture_<confighash16>_<seed>.tcap` files: a matching file is
 * loaded instead of executing the robot, and any invalid file
 * (truncated, bit-flipped, foreign version/identity) is ignored with a
 * warning and re-captured — same policy as the run journal.
 */
class CaptureSource
{
  public:
    CaptureSource(std::string robot, RobotFn run, MachineSpec spec,
                  WorkloadOptions opt)
        : robotName(std::move(robot)), runFn(run),
          specData(std::move(spec)), optData(opt)
    {
        hash = workloads::cellConfigHash(robotName, specData, optData,
                                         "capture");
    }

    const MachineSpec &spec() const { return specData; }
    const WorkloadOptions &opt() const { return optData; }

    /** The capture, recording/loading it on the first call. */
    std::shared_ptr<const sim::CaptureTrace>
    acquire()
    {
        std::unique_lock<std::mutex> lock(mtx, std::defer_lock);
        {
            // Waiting for a sibling's capture is not this cell's work.
            sim::ScopedWatchSuspend suspend;
            lock.lock();
        }
        if (cached)
            return cached;
        const std::string path = filePath();
        if (!path.empty()) {
            auto loaded = std::make_shared<sim::CaptureTrace>();
            std::string err;
            if (sim::CaptureTrace::load(path, *loaded, &err) &&
                loaded->configHash == hash &&
                loaded->seed == optData.seed) {
                ++sim::captureStats().fileHits;
                cached = std::move(loaded);
                return cached;
            }
            if (!err.empty())
                sim::warn("capture: ignoring invalid '%s' (%s); "
                          "re-capturing",
                          path.c_str(), err.c_str());
        }
        sim::CaptureSession session(hash, optData.seed);
        WorkloadOptions copt = optData;
        copt.capture = &session;
        const RunResult res = runFn(specData, copt);
        session.setRobot(res.robot);
        for (const auto &[name, value] : res.metrics)
            session.addMetric(name, value);
        ++sim::captureStats().captures;
        auto trace =
            std::make_shared<sim::CaptureTrace>(session.take());
        if (!path.empty()) {
            std::string err;
            if (!trace->save(path, &err))
                sim::warn("capture: failed to save '%s' (%s)",
                          path.c_str(), err.c_str());
        }
        cached = std::move(trace);
        return cached;
    }

  private:
    std::string
    filePath() const
    {
        const std::string &dir = sim::RunEnv::get().captureDir;
        if (dir.empty())
            return {};
        return dir + "/capture_" + sim::hex64(hash) + "_" +
               std::to_string(optData.seed) + ".tcap";
    }

    std::string robotName;
    RobotFn runFn;
    MachineSpec specData;
    WorkloadOptions optData;
    std::uint64_t hash = 0;
    std::mutex mtx;
    std::shared_ptr<const sim::CaptureTrace> cached;
};

/**
 * Build one robot-run cell that replays @p src's capture when
 * TARTAN_REPLAY is on and (@p spec, @p opt) is replay-compatible with
 * the capture cell, and falls back to a direct run otherwise. Label,
 * content address and seed are constructed exactly like cell()'s, so a
 * replayed cell is indistinguishable in the journal, the result cache
 * and the BENCH payload — byte-identical results are the contract the
 * capture-replay CI job enforces. @p src must outlive the sweep.
 */
inline Cell<RunResult>
replayCell(CaptureSource &src, std::string label, RobotFn run,
           MachineSpec spec, WorkloadOptions opt, std::string_view salt = {})
{
    Cell<RunResult> c;
    c.configHash = workloads::cellConfigHash(label, spec, opt, salt);
    c.seed = opt.seed;
    c.label = std::move(label);
    CaptureSource *source = &src;
    c.fn = [source, run, spec = std::move(spec), opt]() {
        if (!sim::RunEnv::get().replay ||
            !workloads::replayCompatible(source->spec(), source->opt(),
                                         spec, opt))
            return run(spec, opt);
        auto trace = source->acquire();
        ++sim::captureStats().replays;
        return workloads::replayTrace(*trace, spec, opt);
    };
    return c;
}

/**
 * Surface the process-wide capture/replay accounting in @p rep's
 * manifest. A no-op while all counters are zero (TARTAN_REPLAY off, or
 * a driver without replayCell conversions), so existing BENCH payloads
 * are unchanged byte for byte.
 */
inline void
reportCaptureStats(BenchReporter &rep)
{
    const sim::CaptureStats &st = sim::captureStats();
    const std::uint64_t captures = st.captures.load();
    const std::uint64_t file_hits = st.fileHits.load();
    const std::uint64_t replays = st.replays.load();
    if (captures || file_hits || replays)
        rep.captureStats(captures, file_hits, replays);
}

/**
 * Execute @p cells through the campaign-resilience layer and return
 * their results in submission order. Ordering is what keeps parallel
 * output byte-identical to serial output: workers may finish in any
 * order, but consumers only ever see the in-order gather.
 *
 * Codec-backed result types always travel encode → decode — for fresh
 * runs too, not only replays — so every source (simulation, journal,
 * cache) flows through the identical decode path and resume
 * byte-identity cannot be broken by an asymmetric codec bug.
 *
 * Quarantined cells come back as default-constructed placeholders;
 * their identity, error class and attempt count land in @p rep's
 * manifest (campaign + failures blocks). Drivers decide the exit code
 * via campaignExit().
 */
template <typename R>
std::vector<R>
runAll(BenchReporter &rep, RunPool &pool, std::vector<Cell<R>> cells)
{
    using Codec = CellCodec<R>;
    sim::CampaignRunner runner(rep.name(), pool,
                               sim::CampaignConfig::fromEnv(),
                               Codec::schema());
    // Side channel for codec-less result types: the closure parks the
    // value here and returns an empty payload.
    auto boxes = std::make_shared<std::vector<std::optional<R>>>(
        Codec::available ? 0 : cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        sim::CellSpec spec;
        spec.label = std::move(cells[i].label);
        spec.configHash = cells[i].configHash;
        spec.seed = cells[i].seed;
        spec.cacheable = Codec::available;
        if constexpr (Codec::available) {
            runner.submit(std::move(spec),
                          [fn = std::move(cells[i].fn)]() {
                              return Codec::encode(fn());
                          });
        } else {
            runner.submit(std::move(spec),
                          [fn = std::move(cells[i].fn), boxes, i]() {
                              (*boxes)[i] = fn();
                              return std::string();
                          });
        }
    }
    const std::vector<sim::CellOutcome> outcomes = runner.gather();
    const sim::CampaignStats &st = runner.stats();
    rep.campaignStats(st.simulated, st.journalHits, st.cacheHits,
                      st.failed);
    for (const sim::CellFailure &f : st.failures)
        rep.cellFailure(f.label, f.errorClass, f.detail, f.attempts);

    std::vector<R> results(outcomes.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const sim::CellOutcome &out = outcomes[i];
        if (out.status != sim::CellOutcome::Status::Ok)
            continue;  // quarantined: default-constructed placeholder
        if constexpr (Codec::available) {
            std::string err;
            if (!Codec::decode(out.payload, results[i], &err)) {
                // Journal rows and cache entries are CRC- and
                // schema-checked before they get here, so this is a
                // codec bug, not expected operation — but degrade to a
                // quarantine-style placeholder rather than aborting.
                sim::warn("bench: cell '%s' payload failed to decode "
                          "(%s); treating as failed",
                          out.label.c_str(), err.c_str());
                rep.cellFailure(out.label, "decode", err, out.attempts);
            }
        } else if ((*boxes)[i]) {
            results[i] = std::move(*(*boxes)[i]);
        }
    }
    return results;
}

/** Exit-code policy: 0 for a clean sweep, 3 when cells were
 * quarantined — the sweep completed and the manifest is whole, but the
 * payload contains placeholders. */
inline int
campaignExit(const BenchReporter &rep)
{
    return rep.hasFailures() ? 3 : 0;
}

/**
 * Execute @p jobs through @p pool and return their results in
 * submission order (the raw, reporter-less path: no journal, no
 * cache, no retry). Worker exceptions do not abort the gather at the
 * first victim: every future is drained, and the failures — each with
 * its submission index and error class — surface together as one
 * aggregate sim::RunPoolError.
 */
template <typename R>
std::vector<R>
runAll(RunPool &pool, std::vector<std::function<R()>> jobs)
{
    std::vector<std::future<R>> futures;
    futures.reserve(jobs.size());
    for (auto &j : jobs)
        futures.push_back(pool.submit(std::move(j)));
    std::vector<R> results;
    results.reserve(futures.size());
    std::vector<sim::CellFailure> failures;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        try {
            results.push_back(futures[i].get());
        } catch (const std::exception &e) {
            sim::CellFailure f;
            f.index = i;
            f.label = "job[" + std::to_string(i) + "]";
            f.errorClass =
                dynamic_cast<const sim::CellTimeoutError *>(&e)
                    ? "timeout"
                    : dynamic_cast<const sim::CellCrashError *>(&e)
                          ? "crash"
                          : "exception";
            f.detail = e.what();
            f.attempts = 1;
            failures.push_back(std::move(f));
            results.emplace_back();
        }
    }
    if (!failures.empty())
        throw sim::RunPoolError(std::move(failures));
    return results;
}

/**
 * Record the standard snapshot of one robot run as a kernels[] row of
 * @p rep, named @p row (typically "<robot>" or "<robot>/<config>").
 */
inline void
reportRun(BenchReporter &rep, const std::string &row, const RunResult &res)
{
    rep.kernelMetric(row, "wallCycles", double(res.wallCycles));
    rep.kernelMetric(row, "workCycles", double(res.workCycles));
    rep.kernelMetric(row, "instructions", double(res.instructions));
    rep.kernelMetric(row, "l2Misses", double(res.l2Misses));
    rep.kernelMetric(row, "l3Traffic", double(res.l3Traffic));
    if (res.pfIssued) {
        rep.kernelMetric(row, "pfIssued", double(res.pfIssued));
        rep.kernelMetric(row, "pfHitsTimely", double(res.pfHitsTimely));
        rep.kernelMetric(row, "pfHitsLate", double(res.pfHitsLate));
    }
    if (res.npuInvocations)
        rep.kernelMetric(row, "npuInvocations",
                         double(res.npuInvocations));
}

/**
 * Record per-kernel CPI stacks of run @p run (one cpi row per kernel
 * that accumulated cycles) into @p rep. No-op when TARTAN_CPISTACK is
 * off — attribution is still computed inside the core, the knob only
 * gates the surfaces.
 */
inline void
reportCpi(BenchReporter &rep, const std::string &run,
          const std::vector<sim::KernelCounters> &kernels)
{
    if (!sim::RunEnv::get().cpiStack)
        return;
    for (const auto &k : kernels) {
        if (!k.cycles)
            continue;
        rep.cpiRow(run, k.name, k.cycles, k.cpi);
    }
}

/** Overload for the standard robot-run snapshot. */
inline void
reportCpi(BenchReporter &rep, const std::string &run, const RunResult &res)
{
    reportCpi(rep, run, res.kernels);
}

} // namespace tartan::bench

#endif // TARTAN_BENCH_UTIL_HH
