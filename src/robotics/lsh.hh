/**
 * @file
 * Locality-sensitive-hashing NNS (paper §VI-A/B/C).
 *
 * Random-projection LSH: h(x) = floor((x . r + b) / w) with r drawn
 * from N(0, 1). Points hashing to the same bucket key are stored
 * *contiguously* per bucket, turning candidate examination into
 * sequential scans — the property both the ANL prefetcher and the
 * vectorised VLN implementation exploit.
 *
 * Two instrumentation modes share one functional implementation:
 *  - scalar (FLANN-like): per-element loads and FP ops, with the
 *    per-iteration conditional that defeats compiler vectorisation;
 *  - vectorised (VLN): projections and bucket scans charged as packed
 *    vector loads and vector ALU ops.
 */

#ifndef TARTAN_ROBOTICS_LSH_HH
#define TARTAN_ROBOTICS_LSH_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "robotics/nns.hh"
#include "sim/arena.hh"
#include "sim/rng.hh"

namespace tartan::robotics {

/** LSH index parameters. */
struct LshConfig {
    std::uint32_t tables = 4;          //!< independent hash tables (L)
    std::uint32_t hashesPerTable = 2;  //!< concatenated projections (k)
    float bucketWidth = 1.0f;          //!< w, controls bucket size
    std::uint64_t seed = 1234;
    bool probeNeighbors = true;        //!< multi-probe adjacent buckets
};

/** LSH-based NNS backend; vectorised=true yields VLN's timing. */
class LshNns : public NnsBackend
{
  public:
    /**
     * @param arena optional backing store for the instrumented arrays
     *        (projection vectors, bucket copies). Bind one when the
     *        run must be address-deterministic: bucket growth then
     *        bump-allocates instead of reallocating through the host
     *        heap.
     */
    LshNns(const float *store, std::uint32_t dim,
           const LshConfig &config, bool vectorized,
           std::uint32_t stride = 0,
           tartan::sim::Arena *arena = nullptr);

    void insert(Mem &mem, std::uint32_t id) override;
    std::int32_t nearest(Mem &mem, const float *query) override;
    void radius(Mem &mem, const float *query, float eps,
                std::vector<std::uint32_t> &out) override;
    const char *name() const override
    {
        return vectorMode ? "vln" : "flann-lsh";
    }

    std::size_t size() const { return indexed.size(); }
    /** Queries that fell back to a full scan (all probes empty). */
    std::uint64_t fallbackScans() const { return fallbacks; }

    /** Bucket occupancy histogram (for density-heterogeneity studies). */
    std::vector<std::size_t> bucketSizes() const;

  private:
    struct Bucket {
        //!< contiguous candidate data
        tartan::sim::ArenaVec<float> coords;
        tartan::sim::ArenaVec<std::uint32_t> ids;
    };

    using Table = std::unordered_map<std::uint64_t, Bucket>;

    /** Per-table integer hash values for a point. */
    void hashPoint(Mem &mem, const float *p, std::uint32_t table,
                   std::int64_t *h) const;
    static std::uint64_t combine(const std::int64_t *h, std::uint32_t k);
    /** Scan one bucket, updating the best candidate. */
    void scanBucket(Mem &mem, const Bucket &bucket, const float *query,
                    std::int32_t &best, float &best_d);
    void scanBucketRadius(Mem &mem, const Bucket &bucket,
                          const float *query, float eps_sq,
                          std::vector<std::uint32_t> &out);
    /** Charge the examination of `floats` contiguous values. */
    void chargeScan(Mem &mem, const float *base, std::size_t floats,
                    PcId pc) const;
    float hostDistSq(const float *a, const float *b) const;

    LshConfig cfg;
    bool vectorMode;
    tartan::sim::Arena *arenaPtr;
    /** projections[t*k + j] is a dim-vector; offsets[t*k + j] is b. */
    tartan::sim::ArenaVec<float> projections;
    tartan::sim::ArenaVec<float> offsets;
    std::vector<Table> tableData;
    std::vector<std::uint32_t> indexed;
    std::uint64_t fallbacks = 0;
};

} // namespace tartan::robotics

#endif // TARTAN_ROBOTICS_LSH_HH
