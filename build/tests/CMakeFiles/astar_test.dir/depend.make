# Empty dependencies file for astar_test.
# This may be replaced when dependencies are built.
