/**
 * @file
 * Replay drain loop: captured op stream -> fresh Machine -> RunResult.
 */

#include "workloads/replay.hh"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "sim/watchdog.hh"

namespace tartan::workloads {

using tartan::sim::Addr;
using tartan::sim::CapOp;
using tartan::sim::CapRecord;
using tartan::sim::CaptureTrace;
using tartan::sim::CpiCat;
using tartan::sim::Cycles;
using tartan::sim::MemDep;
using tartan::sim::OpClass;
using tartan::sim::PcId;

bool
replayCompatible(const MachineSpec &cap_spec,
                 const WorkloadOptions &cap_opt, const MachineSpec &spec,
                 const WorkloadOptions &opt)
{
    // Sequence-shaping machine knobs must match the capture.
    if (cap_spec.sys.core.vectorLanes != spec.sys.core.vectorLanes)
        return false;
    if (cap_spec.ovec != spec.ovec || cap_spec.npu != spec.npu ||
        cap_spec.wtQueues != spec.wtQueues)
        return false;
    // Workload identity must match: a different tier/scale/seed runs
    // different code, a different capture.
    if (cap_opt.tier != opt.tier || cap_opt.scale != opt.scale ||
        cap_opt.seed != opt.seed)
        return false;
    if (cap_opt.nns != opt.nns || cap_opt.nnsExplicit != opt.nnsExplicit)
        return false;
    if (cap_opt.oriented != opt.oriented ||
        cap_opt.softwareNeural != opt.softwareNeural)
        return false;
    // Observation hooks see events replay does not re-raise (per-PC
    // timelines, sensor faults, host-layer profiles); a hooked cell
    // must run directly.
    if (cap_opt.trace || cap_opt.faults || cap_opt.hostProf)
        return false;
    if (opt.trace || opt.faults || opt.hostProf)
        return false;
    return true;
}

RunResult
replayTrace(const CaptureTrace &trace, const MachineSpec &spec,
            const WorkloadOptions &opt)
{
    WorkloadOptions ropt = opt;
    ropt.trace = nullptr;
    ropt.faults = nullptr;
    ropt.hostProf = nullptr;
    ropt.capture = nullptr;

    Machine machine(spec, ropt);
    tartan::sim::Core &core = machine.core();
    tartan::sim::MemPath &mem = machine.system().mem();

    RunResult result;
    tartan::sim::StageTimer timer(core);
    std::uint32_t stageThreads = 0;
    Cycles wall = 0;
    Cycles serialStart = 0;
    std::vector<Addr> lanes;
    std::vector<std::uint32_t> layers;

    // Post-summarize wall discounts (thread-overlap modelling). Region
    // discounts consume the Overlap* accumulator; kernel discounts read
    // the final kernel table, so both apply after summarize().
    Cycles overlapStart = 0;
    Cycles overlapAcc = 0;
    struct PendingDiscount {
        std::uint8_t kind;              // 0 = region, 1 = kernel list
        Cycles divisor;
        Cycles regionCycles;            // kind 0
        std::vector<std::uint64_t> kernelIds; // kind 1
    };
    std::vector<PendingDiscount> discounts;
    std::vector<std::uint64_t> ids;

    for (const CapRecord &r : trace.records) {
        // The replay worker is its own campaign cell: keep its watchdog
        // beating even through stretches of non-cycle-sink records.
        tartan::sim::heartbeat();
        switch (CapOp(r.op)) {
          case CapOp::RegisterKernel:
            core.registerKernel(std::string(trace.auxString(r.d, r.a32)));
            break;
          case CapOp::SetKernel:
            core.setKernel(r.a32);
            break;
          case CapOp::Exec:
            core.exec(r.b, OpClass(r.a8));
            break;
          case CapOp::Stall:
            core.stall(r.b, CpiCat(r.a8));
            break;
          case CapOp::CountInstructions:
            core.countInstructions(r.b);
            break;
          case CapOp::Load:
            core.load(r.b, PcId(r.c), MemDep(r.a8), r.a32);
            break;
          case CapOp::Store:
            core.store(r.b, PcId(r.c), r.a32);
            break;
          case CapOp::VecOp:
            core.vecOp(r.b);
            break;
          case CapOp::DeviceLoadLanes:
            trace.auxU64s(r.d, r.a32, lanes);
            core.deviceLoadLanes(lanes, PcId(r.b), r.c, CpiCat(r.a8));
            break;
          case CapOp::VecLoadLanes:
            trace.auxU64s(r.d, r.a32, lanes);
            core.vecLoadLanes(lanes, PcId(r.b), r.c, r.a16,
                              CpiCat(r.a8));
            break;
          case CapOp::VecLoadContiguous:
            core.vecLoadContiguous(r.b, r.a32, PcId(r.c));
            break;
          case CapOp::MapSegment:
            mem.mapSegment(r.b, r.c);
            break;
          case CapOp::WriteThroughRange:
            mem.addWriteThroughRange(r.b, r.c);
            break;
          case CapOp::NoAllocateRange:
            mem.addNoAllocateRange(r.b, r.c);
            break;
          case CapOp::StageBegin:
            timer.reset();
            stageThreads = r.a32;
            break;
          case CapOp::ItemBegin:
            timer.beginItem();
            break;
          case CapOp::ItemEnd:
            timer.endItem();
            break;
          case CapOp::StageEnd:
            wall += timer.makespan(
                std::min(stageThreads, Pipeline::kModelCores));
            break;
          case CapOp::SerialBegin:
            serialStart = core.cycles();
            break;
          case CapOp::SerialEnd:
            wall += core.cycles() - serialStart;
            break;
          case CapOp::NpuConfigure:
            if (machine.npu())
                machine.npu()->chargeConfigure(core, r.b);
            break;
          case CapOp::NpuInfer:
            if (machine.npu()) {
                trace.auxU64s(r.d, r.a32, layers);
                machine.npu()->chargeInfer(core, r.b, r.c, layers);
            }
            break;
          case CapOp::Metric: {
            double value = 0.0;
            std::memcpy(&value, &r.b, 8);
            result.metrics[std::string(trace.auxString(r.d, r.a32))] =
                value;
            break;
          }
          case CapOp::RobotName:
            result.robot = std::string(trace.auxString(r.d, r.a32));
            break;
          case CapOp::OverlapBegin:
            overlapStart = core.cycles();
            break;
          case CapOp::OverlapEnd:
            overlapAcc += core.cycles() - overlapStart;
            break;
          case CapOp::Discount:
            if (r.b == 0)
                break;  // defensive: a zero divisor would trap
            if (r.a8 == 0) {
                discounts.push_back({0, r.b, overlapAcc, {}});
                overlapAcc = 0;
            } else {
                trace.auxU64s(r.d, r.a32, ids);
                discounts.push_back({1, r.b, 0, ids});
            }
            break;
          default:
            break;
        }
    }

    summarize(machine, wall, result);

    for (const PendingDiscount &d : discounts) {
        Cycles sum = d.regionCycles;
        for (std::uint64_t id : d.kernelIds)
            if (id < result.kernels.size())
                sum += result.kernels[id].cycles;
        result.wallCycles -= sum - sum / d.divisor;
    }
    return result;
}

} // namespace tartan::workloads
