/**
 * @file
 * Uncore implementation: MESI snoop fabric, crossbar hop model, and
 * banked DRAM timing.
 */

#include "sim/uncore.hh"

#include "sim/cache.hh"
#include "sim/logging.hh"
#include "sim/memsystem.hh"
#include "sim/stats.hh"

namespace tartan::sim {

Uncore::Uncore(const UncoreParams &params, Cache *shared_l3)
    : config(params), l3Cache(shared_l3)
{
    TARTAN_ASSERT(l3Cache, "Uncore requires a shared L3");
    TARTAN_ASSERT(config.l3Slices > 0 && config.dramBanks > 0 &&
                      config.dramRowBytes >= config.lineBytes,
                  "uncore geometry must be non-degenerate");
    banks.resize(config.dramBanks);
}

std::uint32_t
Uncore::attach(MemPath *path)
{
    paths.push_back(path);
    return static_cast<std::uint32_t>(paths.size() - 1);
}

std::uint32_t
Uncore::sliceOf(Addr line_addr) const
{
    return static_cast<std::uint32_t>(
        (line_addr / config.lineBytes) % config.l3Slices);
}

Cycles
Uncore::xbarCost(std::uint32_t core, Addr line_addr)
{
    const std::uint32_t port = core % config.l3Slices;
    const std::uint32_t slice = sliceOf(line_addr);
    const std::uint32_t s = config.l3Slices;
    const std::uint32_t fwd = (slice + s - port) % s;
    const std::uint32_t dist = fwd < s - fwd ? fwd : s - fwd;
    const Cycles hops = 1 + dist;
    ++xbarData.traversals;
    xbarData.hops += hops;
    return config.xbarHopLatency * hops;
}

Uncore::Bank &
Uncore::bankOf(Addr line_addr, std::uint64_t *row)
{
    const std::uint64_t row_number = line_addr / config.dramRowBytes;
    *row = row_number / config.dramBanks;
    return banks[row_number % config.dramBanks];
}

Cycles
Uncore::bankAccess(Addr line_addr, Cycles now, bool charge_wait)
{
    std::uint64_t row = 0;
    Bank &bank = bankOf(line_addr, &row);
    Cycles wait = bank.busyUntil > now ? bank.busyUntil - now : 0;
    const bool row_hit = bank.openRow == row;
    if (row_hit) {
        ++memctrlData.rowHits;
        // FR-FCFS approximation: a row hit is prioritised ahead of the
        // queued row-miss work and joins the open-row burst, so it
        // observes only part of the bank's backlog.
        wait /= 2;
    } else {
        ++memctrlData.rowMisses;
        bank.openRow = row;
    }
    if (charge_wait && wait > 0) {
        ++memctrlData.bankConflicts;
        memctrlData.conflictCycles += wait;
    }
    const Cycles service =
        row_hit ? config.dramRowHitLatency : config.dramRowMissLatency;
    bank.busyUntil = now + wait + service;
    return wait + service;
}

Cycles
Uncore::dramRead(Addr line_addr, Cycles now)
{
    ++memctrlData.reads;
    return bankAccess(line_addr, now, true);
}

void
Uncore::dramWrite(Addr line_addr, Cycles now)
{
    ++memctrlData.writes;
    bankAccess(line_addr, now, false);
}

Uncore::MissAction
Uncore::resolveMiss(std::uint32_t core, Addr line_addr, bool is_write,
                    Cycles now)
{
    MissAction act;
    bool any_remote = false;
    bool forwarded = false;
    for (std::uint32_t i = 0; i < paths.size(); ++i) {
        if (i == core)
            continue;
        MemPath *p = paths[i];
        for (Cache *c : {&p->l1(), &p->l2()}) {
            if (c->lineState(line_addr) == MesiState::Invalid)
                continue;
            any_remote = true;
            bool dirty = false;
            if (is_write) {
                c->snoopInvalidate(line_addr, &dirty);
                ++coherenceData.invalidations;
            } else {
                c->snoopDowngrade(line_addr, &dirty);
                ++coherenceData.downgrades;
            }
            if (dirty)
                forwarded = true;
        }
    }
    if (!any_remote)
        return act;
    ++coherenceData.snoops;
    act.cycles = config.coherenceLatency;
    if (forwarded) {
        ++coherenceData.dirtyForwards;
        // The surrendered Modified line lands in the shared L3 dirty,
        // so the requester's fetch (which runs right after this) hits
        // it there instead of going to DRAM.
        auto ev = l3Cache->fill(line_addr, false, true);
        if (ev.valid && ev.dirty)
            dramWrite(ev.lineAddr, now);
    }
    if (!is_write) {
        act.shared = true;
        ++coherenceData.sharedFills;
    }
    return act;
}

Cycles
Uncore::storeUpgrade(std::uint32_t core, Addr line_addr)
{
    ++coherenceData.upgrades;
    ++coherenceData.snoops;
    for (std::uint32_t i = 0; i < paths.size(); ++i) {
        if (i == core)
            continue;
        MemPath *p = paths[i];
        for (Cache *c : {&p->l1(), &p->l2()}) {
            if (c->lineState(line_addr) == MesiState::Invalid)
                continue;
            c->snoopInvalidate(line_addr, nullptr);
            ++coherenceData.invalidations;
        }
    }
    paths[core]->l1().clearShared(line_addr);
    paths[core]->l2().clearShared(line_addr);
    return config.coherenceLatency;
}

void
Uncore::registerStats(StatsGroup &group)
{
    StatsGroup &co = group.child("coherence");
    co.addCounter("snoops", &coherenceData.snoops,
                  "miss/upgrade snoop rounds issued");
    co.addCounter("invalidations", &coherenceData.invalidations,
                  "remote lines invalidated");
    co.addCounter("downgrades", &coherenceData.downgrades,
                  "remote lines demoted to Shared");
    co.addCounter("dirtyForwards", &coherenceData.dirtyForwards,
                  "modified lines forwarded through the L3");
    co.addCounter("upgrades", &coherenceData.upgrades,
                  "local S->M store upgrades");
    co.addCounter("sharedFills", &coherenceData.sharedFills,
                  "fills installed in Shared state");

    StatsGroup &xb = group.child("xbar");
    xb.addCounter("traversals", &xbarData.traversals,
                  "core <-> slice crossings");
    xb.addCounter("hops", &xbarData.hops,
                  "total hops across all traversals");
    xb.addDerived(
        "avgHops",
        [this] {
            return xbarData.traversals
                       ? double(xbarData.hops) / double(xbarData.traversals)
                       : 0.0;
        },
        "mean hops per traversal");

    StatsGroup &mc = group.child("memctrl");
    mc.addCounter("reads", &memctrlData.reads, "DRAM line fetches");
    mc.addCounter("writes", &memctrlData.writes, "DRAM line write-backs");
    mc.addCounter("rowHits", &memctrlData.rowHits,
                  "requests hitting the open row");
    mc.addCounter("rowMisses", &memctrlData.rowMisses,
                  "requests opening a new row");
    mc.addCounter("bankConflicts", &memctrlData.bankConflicts,
                  "reads that found their bank busy");
    mc.addCounter("conflictCycles", &memctrlData.conflictCycles,
                  "total cycles spent waiting on busy banks");
    mc.addInvariant("row hits + misses == reads + writes", [this] {
        return memctrlData.rowHits + memctrlData.rowMisses ==
               memctrlData.reads + memctrlData.writes;
    });
    mc.addInvariant("conflict cycles imply conflicts", [this] {
        return memctrlData.bankConflicts > 0 ||
               memctrlData.conflictCycles == 0;
    });
}

} // namespace tartan::sim
