# Empty dependencies file for tartan_robotics.
# This may be replaced when dependencies are built.
