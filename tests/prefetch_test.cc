/**
 * @file
 * Dedicated Bingo prefetcher tests: trigger/footprint replay, retire on
 * eviction, FIFO eviction at capacity, triggerKey packing, the
 * historyFifo churn regression, and flat-vs-map backend equivalence.
 */

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sim/bingo.hh"
#include "sim/types.hh"

using namespace tartan::sim;

namespace {

constexpr std::uint32_t kLine = 64;
constexpr std::uint32_t kPage = 2048;
constexpr std::uint32_t kLinesPerPage = kPage / kLine;

Addr
lineAddr(std::uint64_t page, std::uint32_t line)
{
    return page * kPage + line * kLine;
}

/** Touch the trigger line plus @p extras on @p page, then evict it. */
void
learnFootprint(BingoPrefetcher &bingo, std::uint64_t page, PcId pc,
               std::uint32_t trigger,
               const std::vector<std::uint32_t> &extras)
{
    std::vector<Addr> out;
    bingo.observe({lineAddr(page, trigger), pc, true}, out);
    for (std::uint32_t line : extras)
        bingo.observe({lineAddr(page, line), pc, true}, out);
    bingo.onEviction(lineAddr(page, 0));
}

/** Replay targets from a fresh trigger access on @p page. */
std::vector<Addr>
replay(BingoPrefetcher &bingo, std::uint64_t page, PcId pc,
       std::uint32_t trigger)
{
    std::vector<Addr> out;
    bingo.observe({lineAddr(page, trigger), pc, true}, out);
    return out;
}

} // namespace

TEST(Prefetch, TriggerReplaysLearnedFootprintInLineOrder)
{
    for (const bool fast : {false, true}) {
        BingoPrefetcher bingo(kLine, kPage, 1024);
        bingo.setFastMode(fast);

        // Learn lines {2, 7, 5, 31} on page 3; the trigger line itself
        // must not be replayed, and targets come out in ascending line
        // order regardless of observation order.
        learnFootprint(bingo, 3, 42, 2, {7, 5, 31});
        const auto out = replay(bingo, 9, 42, 2);
        ASSERT_EQ(out.size(), 3u) << "fast=" << fast;
        EXPECT_EQ(out[0], lineAddr(9, 5));
        EXPECT_EQ(out[1], lineAddr(9, 7));
        EXPECT_EQ(out[2], lineAddr(9, 31));
    }
}

TEST(Prefetch, NoReplayBeforeRetire)
{
    for (const bool fast : {false, true}) {
        BingoPrefetcher bingo(kLine, kPage, 1024);
        bingo.setFastMode(fast);

        std::vector<Addr> out;
        bingo.observe({lineAddr(0, 2), 42, true}, out);
        bingo.observe({lineAddr(0, 6), 42, true}, out);
        EXPECT_TRUE(out.empty());

        // The footprint is still active — a second page with the same
        // trigger has nothing to replay until the first page retires.
        bingo.observe({lineAddr(1, 2), 42, true}, out);
        EXPECT_TRUE(out.empty());
        EXPECT_EQ(bingo.historySize(), 0u) << "fast=" << fast;

        bingo.onEviction(lineAddr(0, 0));
        EXPECT_EQ(bingo.historySize(), 1u);
        EXPECT_FALSE(replay(bingo, 5, 42, 2).empty());
    }
}

TEST(Prefetch, EvictionOfUntrackedPageIsIgnored)
{
    for (const bool fast : {false, true}) {
        BingoPrefetcher bingo(kLine, kPage, 1024);
        bingo.setFastMode(fast);
        bingo.onEviction(lineAddr(17, 3));
        EXPECT_EQ(bingo.historySize(), 0u) << "fast=" << fast;
    }
}

TEST(Prefetch, TriggerKeyPacksPcAndOffsetWithoutAliasing)
{
    for (const bool fast : {false, true}) {
        BingoPrefetcher bingo(kLine, kPage, 1024);
        bingo.setFastMode(fast);

        // key = (pc << 6) | offset. With a naive pc+offset or pc|offset
        // packing, (pc=1, off=1) and (pc=2, off=0) or (pc=1, off=0) and
        // (pc=1, off=1) could alias; each (pc, offset) pair must learn
        // its own footprint.
        learnFootprint(bingo, 0, 1, 1, {4});
        learnFootprint(bingo, 1, 2, 0, {9});
        learnFootprint(bingo, 2, 1, 0, {13});

        const auto a = replay(bingo, 10, 1, 1);
        ASSERT_EQ(a.size(), 1u) << "fast=" << fast;
        EXPECT_EQ(a[0], lineAddr(10, 4));

        const auto b = replay(bingo, 11, 2, 0);
        ASSERT_EQ(b.size(), 1u);
        EXPECT_EQ(b[0], lineAddr(11, 9));

        const auto c = replay(bingo, 12, 1, 0);
        ASSERT_EQ(c.size(), 1u);
        EXPECT_EQ(c[0], lineAddr(12, 13));
    }
}

TEST(Prefetch, HistoryEvictsOldestTriggerAtCapacity)
{
    for (const bool fast : {false, true}) {
        BingoPrefetcher bingo(kLine, kPage, 2);
        bingo.setFastMode(fast);

        learnFootprint(bingo, 0, 100, 0, {1});
        learnFootprint(bingo, 1, 200, 0, {2});
        EXPECT_EQ(bingo.historySize(), 2u) << "fast=" << fast;

        // Re-learning an existing trigger overwrites in place — no FIFO
        // slot is consumed and nothing is evicted.
        learnFootprint(bingo, 2, 200, 0, {3});
        EXPECT_EQ(bingo.historySize(), 2u);
        EXPECT_EQ(bingo.fifoLive(), 2u);

        // A third distinct trigger evicts the oldest (pc 100).
        learnFootprint(bingo, 3, 300, 0, {4});
        EXPECT_EQ(bingo.historySize(), 2u);
        EXPECT_TRUE(replay(bingo, 10, 100, 0).empty());
        const auto b = replay(bingo, 11, 200, 0);
        ASSERT_EQ(b.size(), 1u);
        EXPECT_EQ(b[0], lineAddr(11, 3));
        EXPECT_FALSE(replay(bingo, 12, 300, 0).empty());
    }
}

TEST(Prefetch, FifoBackingStaysBoundedUnderChurn)
{
    // Regression for the historyFifo leak: fifoHead used to advance on
    // every capacity eviction while the vector kept its retired prefix
    // forever, so backing slots grew linearly with history churn. Drive
    // far more distinct triggers than the capacity holds and check the
    // backing storage stays bounded (compaction in slow mode, the fixed
    // ring in fast mode) while the live window tracks the table exactly.
    for (const bool fast : {false, true}) {
        constexpr std::uint32_t kCapacity = 64;
        BingoPrefetcher bingo(kLine, kPage, kCapacity);
        bingo.setFastMode(fast);

        constexpr std::uint64_t kChurn = 20000;
        for (std::uint64_t i = 0; i < kChurn; ++i)
            learnFootprint(bingo, i, static_cast<PcId>(1000 + i), 0, {1});

        EXPECT_EQ(bingo.historySize(), kCapacity) << "fast=" << fast;
        EXPECT_EQ(bingo.fifoLive(), kCapacity);
        // Compaction triggers once the dead prefix reaches 1024 and
        // dominates, so slow-mode backing never exceeds ~2x that
        // threshold plus the live window; the fast ring is exact.
        EXPECT_LE(bingo.fifoBackingSlots(), fast ? std::size_t(kCapacity)
                                                 : std::size_t(2048 + kCapacity))
            << "fifo backing grew with churn (leak regressed)";

        // The survivors are exactly the most recent kCapacity triggers.
        EXPECT_TRUE(replay(bingo, kChurn + 1, 1000, 0).empty());
        EXPECT_FALSE(
            replay(bingo, kChurn + 2,
                   static_cast<PcId>(1000 + kChurn - 1), 0)
                .empty());
    }
}

TEST(Prefetch, FlatBackendMatchesMapBackendOnRandomStream)
{
    // Two instances, one per backend, fed the identical random stream of
    // observations and evictions must emit identical prediction streams
    // and agree on every introspection count.
    BingoPrefetcher slow(kLine, kPage, 32);
    BingoPrefetcher fast(kLine, kPage, 32);
    fast.setFastMode(true);

    std::mt19937_64 rng(12345);
    std::vector<Addr> out_slow, out_fast;
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t page = rng() % 64;
        if (rng() % 8 == 0) {
            slow.onEviction(lineAddr(page, 0));
            fast.onEviction(lineAddr(page, 0));
        } else {
            const PrefetchObservation obs{
                lineAddr(page, static_cast<std::uint32_t>(
                                   rng() % kLinesPerPage)),
                static_cast<PcId>(rng() % 16), true};
            out_slow.clear();
            out_fast.clear();
            slow.observe(obs, out_slow);
            fast.observe(obs, out_fast);
            ASSERT_EQ(out_slow, out_fast) << "diverged at step " << i;
        }
        ASSERT_EQ(slow.historySize(), fast.historySize());
        ASSERT_EQ(slow.fifoLive(), fast.fifoLive());
    }
}

TEST(Prefetch, ModeToggleMigratesStateAndFifoOrder)
{
    // Toggling backends mid-stream must be unobservable, including the
    // FIFO eviction order carried across the switch.
    BingoPrefetcher ref(kLine, kPage, 16);
    BingoPrefetcher toggled(kLine, kPage, 16);

    std::mt19937_64 rng(99);
    std::vector<Addr> out_ref, out_tog;
    bool mode = false;
    for (int i = 0; i < 20000; ++i) {
        if (i % 251 == 0) {
            mode = !mode;
            toggled.setFastMode(mode);
        }
        const std::uint64_t page = rng() % 48;
        if (rng() % 6 == 0) {
            ref.onEviction(lineAddr(page, 0));
            toggled.onEviction(lineAddr(page, 0));
        } else {
            const PrefetchObservation obs{
                lineAddr(page, static_cast<std::uint32_t>(
                                   rng() % kLinesPerPage)),
                static_cast<PcId>(rng() % 12), true};
            out_ref.clear();
            out_tog.clear();
            ref.observe(obs, out_ref);
            toggled.observe(obs, out_tog);
            ASSERT_EQ(out_ref, out_tog) << "diverged at step " << i;
        }
        ASSERT_EQ(ref.historySize(), toggled.historySize());
        ASSERT_EQ(ref.fifoLive(), toggled.fifoLive());
    }
}
