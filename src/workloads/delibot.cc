/**
 * @file
 * DeliBot: a Spot-like delivery robot. MCL localisation (ray casting
 * dominates, ~74% in the paper), a greedy local planner and PID
 * control. Pipeline threads: 8 -> 1 -> 1.
 */

#include "workloads/robots.hh"

#include <cmath>

#include "robotics/control.hh"
#include "robotics/mcl.hh"

namespace tartan::workloads {

using namespace tartan::robotics;

RunResult
runDeliBot(const MachineSpec &spec, const WorkloadOptions &opt)
{
    RunResult result;
    result.robot = "DeliBot";

    Machine machine(spec, opt);
    auto &core = machine.core();
    auto &mem = machine.mem();
    Pipeline pipeline(core);
    tartan::sim::Rng rng(opt.seed);
    tartan::sim::Arena arena(24ull << 20);
    machine.mapArena(arena);

    const auto k_raycast = core.registerKernel("raycast");
    const auto k_plan = core.registerKernel("greedy");
    const auto k_control = core.registerKernel("pid");

    // Environment: heterogeneous warehouse floor.
    const std::uint32_t dim = std::max<std::uint32_t>(
        192, static_cast<std::uint32_t>(768 * std::sqrt(opt.scale)));
    OccupancyGrid2D grid(dim, dim, arena);
    grid.makeHeterogeneous(rng, 0.01, 0.04);

    MclConfig mcl_cfg;
    mcl_cfg.particles = std::max<std::uint32_t>(
        16, static_cast<std::uint32_t>(144 * opt.scale));
    mcl_cfg.raysPerScan = 12;
    mcl_cfg.ray.maxRange = dim / 4.0;
    Mcl mcl(mcl_cfg, arena);

    // Inter-stage observation buffer: a producer-consumer structure
    // eligible for the write-through MTRR treatment.
    double *obs_buffer = arena.alloc<double>(mcl_cfg.raysPerScan);
    if (spec.wtQueues)
        machine.system().mem().addWriteThroughRange(
            reinterpret_cast<tartan::sim::Addr>(obs_buffer),
            mcl_cfg.raysPerScan * sizeof(double));

    OrientedEngine &engine = machine.orientedEngine(opt.tier, opt.oriented);

    // Find a free start cell and goal.
    Pose2 truth{dim * 0.18, dim * 0.5, 0.0};
    while (grid.occupied(static_cast<std::uint32_t>(truth.x),
                         static_cast<std::uint32_t>(truth.y)))
        truth.y += 3.0;
    const Vec2 goal{dim * 0.85, dim * 0.55};

    mcl.init(truth, 4.0, rng);
    Pid heading_pid(0.8, 0.05, 0.1);

    // Laser readings pass through the fault layer, then a sanitizer
    // that holds the last good value on drops/NaNs and clamps spikes.
    tartan::sim::GuardedSensor laser(opt.faults, 0.0,
                                     mcl_cfg.ray.maxRange);

    const std::uint32_t frames = std::max<std::uint32_t>(
        4, static_cast<std::uint32_t>(10 * opt.scale));
    Pose2 estimate = truth;
    for (std::uint32_t frame = 0; frame < frames; ++frame) {
        ScopedPhase roi(core, "frame " + std::to_string(frame));
        // --- Perception (8 threads): MCL over the laser scan --------
        std::vector<double> observed;
        pipeline.serial([&] {
            ScopedKernel scope(core, k_raycast);
            observed = mcl.scanFrom(mem, grid, truth, engine);
            for (std::uint32_t r = 0; r < mcl_cfg.raysPerScan; ++r) {
                observed[r] = laser.read(observed[r]);
                mem.storev(obs_buffer + r, observed[r], mcl_pc::particle);
            }
        });
        pipeline.stage(8, mcl_cfg.particles, [&](std::uint32_t i) {
            ScopedKernel scope(core, k_raycast);
            mcl.weighParticle(mem, grid, observed, engine, i);
        });
        pipeline.serial([&] {
            ScopedKernel scope(core, k_raycast);
            mcl.normalizeWeights(mem);
            mcl.resample(mem, rng);
            estimate = mcl.estimate(mem);
        });

        // --- Planning (1 thread): greedy step towards the goal ------
        Vec2 target;
        pipeline.serial([&] {
            ScopedKernel scope(core, k_plan);
            target = greedyStep(mem, Vec2{estimate.x, estimate.y}, goal,
                                4.0);
            // Candidate-neighbour scoring.
            for (int n = 0; n < 8; ++n) {
                grid.read(mem,
                          static_cast<std::uint32_t>(
                              std::clamp(target.x + (n % 3) - 1.0, 1.0,
                                         dim - 2.0)),
                          static_cast<std::uint32_t>(
                              std::clamp(target.y + (n / 3) - 1.0, 1.0,
                                         dim - 2.0)),
                          mcl_pc::particle);
                mem.execFp(6);
            }
        });

        // --- Control (1 thread): PID on the heading error -----------
        pipeline.serial([&] {
            ScopedKernel scope(core, k_control);
            const double desired =
                std::atan2(target.y - estimate.y, target.x - estimate.x);
            const double steer = heading_pid.step(
                mem, wrapAngle(desired - truth.theta), 0.1);
            truth.theta = wrapAngle(truth.theta + 0.4 * steer);
            mem.execFp(10);
        });

        // Advance the true pose; stay off obstacles.
        const double nx = truth.x + 2.5 * std::cos(truth.theta);
        const double ny = truth.y + 2.5 * std::sin(truth.theta);
        if (!grid.occupied(static_cast<std::uint32_t>(
                               std::clamp(nx, 1.0, dim - 2.0)),
                           static_cast<std::uint32_t>(
                               std::clamp(ny, 1.0, dim - 2.0)))) {
            truth.x = std::clamp(nx, 1.0, dim - 2.0);
            truth.y = std::clamp(ny, 1.0, dim - 2.0);
        } else {
            truth.theta = wrapAngle(truth.theta + 0.8);
        }
        const double dxm = 2.5 * std::cos(truth.theta);
        const double dym = 2.5 * std::sin(truth.theta);
        mcl.predict(mem, dxm, dym, 0.0, rng);
    }

    result.metrics["locErrorCells"] =
        dist2(estimate.x, estimate.y, truth.x, truth.y);
    if (opt.faults) {
        result.metrics["faultsInjected"] =
            double(opt.faults->stats().total());
        result.metrics["recoveries"] =
            double(laser.recoveries() + mcl.health().skippedRays +
                   mcl.health().weightResets);
    }
    summarize(machine, pipeline, result);
    return result;
}

} // namespace tartan::workloads
