file(REMOVE_RECURSE
  "CMakeFiles/tab04_overhead.dir/tab04_overhead.cc.o"
  "CMakeFiles/tab04_overhead.dir/tab04_overhead.cc.o.d"
  "tab04_overhead"
  "tab04_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
