/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: the
 * BenchReporter every driver routes its results through (human table on
 * stdout plus a machine-readable BENCH_<name>.json), normalisation and
 * geometric means, the standard per-run metric snapshot, and the
 * RunPool plumbing that executes every driver's independent runs
 * concurrently. Every bench prints the paper's expected shape next to
 * the measured values so the output can be diffed against
 * EXPERIMENTS.md.
 *
 * Parallel-run pattern: a driver builds its complete list of run
 * closures (each capturing its own MachineSpec / WorkloadOptions /
 * trace session by value), hands them to runAll(), and only then
 * formats tables from the in-submission-order results. All printing
 * happens on the main thread after the gather, so stdout and the BENCH
 * manifest are byte-identical whatever TARTAN_JOBS is.
 */

#ifndef TARTAN_BENCH_UTIL_HH
#define TARTAN_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/env.hh"
#include "sim/logging.hh"
#include "sim/report.hh"
#include "sim/runpool.hh"
#include "workloads/robots.hh"

namespace tartan::bench {

using tartan::sim::BenchReporter;
using tartan::sim::RunPool;
using workloads::MachineSpec;
using workloads::RobotFn;
using workloads::RunResult;
using workloads::SoftwareTier;
using workloads::WorkloadOptions;

/**
 * Geometric mean of the positive entries of @p values. Non-positive
 * entries would put log(0) = -inf (or a NaN) into the accumulator and
 * silently poison the whole mean, so they are skipped with a warn() —
 * a degenerate run should never erase every other robot's result.
 *
 * When *every* entry is skipped (or @p values is empty) there is no
 * mean to report: the result is NaN, which the JSON writer emits as
 * null and report_md renders as "n/a". The historical 0.0 here was a
 * silent lie — it flowed into normalised columns and speedup() as a
 * fake baseline.
 */
inline double
geomean(const std::vector<double> &values)
{
    double acc = 0.0;
    std::size_t used = 0;
    for (double v : values) {
        if (!(v > 0.0)) {
            sim::warn("bench: geomean skipping non-positive value %g", v);
            continue;
        }
        acc += std::log(v);
        ++used;
    }
    if (!used) {
        sim::warn("bench: geomean of no positive values; reporting NaN");
        return std::nan("");
    }
    return std::exp(acc / static_cast<double>(used));
}

/**
 * Normalised value helper (baseline / value = speedup). A non-positive
 * @p value means the run recorded no time at all — report it instead of
 * returning a silent 0.0 that downstream means would choke on.
 */
inline double
speedup(double baseline, double value)
{
    if (!(value > 0.0)) {
        sim::warn("bench: speedup of a non-positive run time %g "
                  "(baseline %g); reporting 0",
                  value, baseline);
        return 0.0;
    }
    return baseline / value;
}

/** Default per-bench workload scale (kept small for sweep benches). */
inline WorkloadOptions
options(SoftwareTier tier, double scale = 1.0, std::uint64_t seed = 42)
{
    WorkloadOptions opt;
    opt.tier = tier;
    opt.scale = scale;
    opt.seed = seed;
    return opt;
}

/**
 * Attach a trace session (possibly null, i.e. TARTAN_TRACE unset) to a
 * WorkloadOptions value. Keeps per-run instrumentation to one line:
 *
 *   auto t = rep.makeTrace("DeliBot_B");
 *   auto res = robot.run(spec, traced(options(tier), t));
 *   t.reset();  // flush TRACE_*.json before the next run
 */
inline WorkloadOptions
traced(WorkloadOptions opt,
       const std::unique_ptr<sim::TraceSession> &session)
{
    opt.trace = session.get();
    return opt;
}

/**
 * Build one run closure: a (robot function, spec, options) cell ready
 * for RunPool submission. Everything is captured by value, so the
 * closure owns its whole configuration and shares nothing with its
 * siblings.
 */
inline std::function<RunResult()>
job(RobotFn run, MachineSpec spec, WorkloadOptions opt)
{
    return [run, spec = std::move(spec), opt]() {
        return run(spec, opt);
    };
}

/**
 * Build one *traced* run closure. The TraceSession is created here, on
 * the calling thread and in submission order, so the reporter's
 * manifest lists trace paths deterministically; the closure owns the
 * session (shared_ptr because std::function must stay copyable) and
 * finalizes it right after the run, exactly where the serial code
 * called t.reset().
 */
inline std::function<RunResult()>
job(BenchReporter &rep, const std::string &run_label, RobotFn run,
    MachineSpec spec, WorkloadOptions opt)
{
    std::shared_ptr<sim::TraceSession> trace = rep.makeTrace(run_label);
    return [run, spec = std::move(spec), opt,
            trace = std::move(trace)]() {
        WorkloadOptions traced_opt = opt;
        traced_opt.trace = trace.get();
        RunResult res = run(spec, traced_opt);
        if (trace)
            trace->finalize();
        return res;
    };
}

/**
 * Execute @p jobs through @p pool and return their results in
 * submission order. Ordering is what keeps parallel output
 * byte-identical to serial output: workers may finish in any order,
 * but consumers only ever see the futures' in-order gather. A worker
 * exception re-throws here, from the offending job's position.
 */
template <typename R>
std::vector<R>
runAll(RunPool &pool, std::vector<std::function<R()>> jobs)
{
    std::vector<std::future<R>> futures;
    futures.reserve(jobs.size());
    for (auto &j : jobs)
        futures.push_back(pool.submit(std::move(j)));
    std::vector<R> results;
    results.reserve(futures.size());
    for (auto &f : futures)
        results.push_back(f.get());
    return results;
}

/**
 * Record the standard snapshot of one robot run as a kernels[] row of
 * @p rep, named @p row (typically "<robot>" or "<robot>/<config>").
 */
inline void
reportRun(BenchReporter &rep, const std::string &row, const RunResult &res)
{
    rep.kernelMetric(row, "wallCycles", double(res.wallCycles));
    rep.kernelMetric(row, "workCycles", double(res.workCycles));
    rep.kernelMetric(row, "instructions", double(res.instructions));
    rep.kernelMetric(row, "l2Misses", double(res.l2Misses));
    rep.kernelMetric(row, "l3Traffic", double(res.l3Traffic));
    if (res.pfIssued) {
        rep.kernelMetric(row, "pfIssued", double(res.pfIssued));
        rep.kernelMetric(row, "pfHitsTimely", double(res.pfHitsTimely));
        rep.kernelMetric(row, "pfHitsLate", double(res.pfHitsLate));
    }
    if (res.npuInvocations)
        rep.kernelMetric(row, "npuInvocations",
                         double(res.npuInvocations));
}

/**
 * Record per-kernel CPI stacks of run @p run (one cpi row per kernel
 * that accumulated cycles) into @p rep. No-op when TARTAN_CPISTACK is
 * off — attribution is still computed inside the core, the knob only
 * gates the surfaces.
 */
inline void
reportCpi(BenchReporter &rep, const std::string &run,
          const std::vector<sim::KernelCounters> &kernels)
{
    if (!sim::RunEnv::get().cpiStack)
        return;
    for (const auto &k : kernels) {
        if (!k.cycles)
            continue;
        rep.cpiRow(run, k.name, k.cycles, k.cpi);
    }
}

/** Overload for the standard robot-run snapshot. */
inline void
reportCpi(BenchReporter &rep, const std::string &run, const RunResult &res)
{
    reportCpi(rep, run, res.kernels);
}

} // namespace tartan::bench

#endif // TARTAN_BENCH_UTIL_HH
