/**
 * @file
 * Bingo-like spatial prefetcher implementation.
 */

#include "sim/bingo.hh"

#include "sim/logging.hh"

namespace tartan::sim {

BingoPrefetcher::BingoPrefetcher(std::uint32_t line_bytes,
                                 std::uint32_t page_bytes,
                                 std::uint32_t history_entries)
    : lineBytes(line_bytes),
      pageBytes(page_bytes),
      linesPerPage(page_bytes / line_bytes),
      historyCapacity(history_entries)
{
    TARTAN_ASSERT(linesPerPage <= 64, "footprint bitmap limited to 64 lines");
}

std::uint32_t
BingoPrefetcher::lineOffset(Addr addr) const
{
    return static_cast<std::uint32_t>((addr % pageBytes) / lineBytes);
}

std::uint64_t
BingoPrefetcher::triggerKey(PcId pc, std::uint32_t offset) const
{
    return (static_cast<std::uint64_t>(pc) << 6) | offset;
}

void
BingoPrefetcher::retire(std::uint64_t page)
{
    auto it = active.find(page);
    if (it == active.end())
        return;
    if (history.find(it->second.triggerKey) == history.end()) {
        if (history.size() >= historyCapacity && fifoHead < historyFifo.size()) {
            history.erase(historyFifo[fifoHead]);
            ++fifoHead;
        }
        historyFifo.push_back(it->second.triggerKey);
    }
    history[it->second.triggerKey] = it->second.footprint;
    active.erase(it);
}

void
BingoPrefetcher::observe(const PrefetchObservation &obs,
                         std::vector<Addr> &out)
{
    const std::uint64_t page = pageOf(obs.addr);
    const std::uint32_t offset = lineOffset(obs.addr);

    auto it = active.find(page);
    if (it != active.end()) {
        it->second.footprint |= (1ull << offset);
        return;
    }

    // Trigger access for this page: replay the learned footprint.
    const std::uint64_t key = triggerKey(obs.pc, offset);
    ActiveRegion region;
    region.triggerKey = key;
    region.footprint = (1ull << offset);
    active.emplace(page, region);

    auto hist = history.find(key);
    if (hist != history.end()) {
        const Addr page_base = page * pageBytes;
        for (std::uint32_t line = 0; line < linesPerPage; ++line) {
            if (line == offset)
                continue;
            if (hist->second & (1ull << line))
                out.push_back(page_base + line * lineBytes);
        }
    }
}

void
BingoPrefetcher::onEviction(Addr line_addr)
{
    // A page whose lines start leaving the cache has finished its
    // residency; learn its footprint.
    retire(pageOf(line_addr));
}

std::uint64_t
BingoPrefetcher::storageBits() const
{
    // History entry: ~30-bit tag + 64-bit footprint (original Bingo uses
    // long events and PHT rows; this is the same order of magnitude).
    return static_cast<std::uint64_t>(historyCapacity) * (30 + 64);
}

} // namespace tartan::sim
