/**
 * @file
 * Collision-detection kernel implementations.
 */

#include "robotics/collision.hh"

#include <cmath>

namespace tartan::robotics {

namespace {

/** Start index and stride of one sweep line of the footprint. */
struct SweepLine {
    double start;
    double stride;
    std::uint32_t steps;
};

SweepLine
sweepLine(const OccupancyGrid2D &grid, const Pose2 &pose,
          const Footprint &fp, std::uint32_t line)
{
    // Lines run lengthwise, offset sideways across the width.
    const double frac =
        fp.sweepLines <= 1
            ? 0.0
            : (static_cast<double>(line) / (fp.sweepLines - 1) - 0.5);
    const double off = frac * fp.width;
    const double ox = pose.x - off * std::sin(pose.theta);
    const double oy = pose.y + off * std::cos(pose.theta);
    const double dx = std::cos(pose.theta);
    const double dy = std::sin(pose.theta);
    SweepLine out;
    out.start = oy * grid.width() + ox;
    out.stride = dy * grid.width() + dx;
    out.steps = static_cast<std::uint32_t>(fp.length);
    return out;
}

std::size_t
clampCell(double idx, std::size_t size)
{
    if (idx < 0.0)
        return 0;
    const auto cell = static_cast<std::size_t>(idx);
    return cell >= size ? size - 1 : cell;
}

} // namespace

bool
footprintCollides(Mem &mem, const OccupancyGrid2D &grid, const Pose2 &pose,
                  const Footprint &fp, OrientedEngine &engine)
{
    mem.execFp(10);  // pose trig and line setup
    const std::size_t size = grid.cells();
    float batch[64];
    for (std::uint32_t line = 0; line < fp.sweepLines; ++line) {
        const SweepLine sl = sweepLine(grid, pose, fp, line);
        std::uint32_t done = 0;
        while (done < sl.steps) {
            const std::uint32_t lanes =
                std::min<std::uint32_t>(engine.preferredLanes(),
                                        std::min<std::uint32_t>(
                                            64u, sl.steps - done));
            engine.load(mem, grid.data(), size,
                        sl.start + sl.stride * done, sl.stride, lanes,
                        batch, collision_pc::footprint);
            engine.chargeCheck(mem, lanes);
            for (std::uint32_t i = 0; i < lanes; ++i)
                if (batch[i] > kOccupied)
                    return true;
            done += lanes;
        }
    }
    return false;
}

bool
footprintCollidesReference(const OccupancyGrid2D &grid, const Pose2 &pose,
                           const Footprint &fp)
{
    const std::size_t size = grid.cells();
    for (std::uint32_t line = 0; line < fp.sweepLines; ++line) {
        const SweepLine sl = sweepLine(grid, pose, fp, line);
        double idx = sl.start;
        for (std::uint32_t s = 0; s < sl.steps; ++s) {
            if (grid.data()[clampCell(idx, size)] > kOccupied)
                return true;
            idx += sl.stride;
        }
    }
    return false;
}

bool
cuboidsCollide(Mem &mem, const Cuboid *robot, std::size_t robot_count,
               const Cuboid *obstacles, std::size_t first, std::size_t last)
{
    bool hit = false;
    for (std::size_t o = first; o < last; ++o) {
        // Load the obstacle cuboid (center + half extents, 6 doubles).
        mem.loadv(&obstacles[o].center.x, collision_pc::cuboid,
                  MemDep::Independent);
        mem.loadv(&obstacles[o].halfExtent.x, collision_pc::cuboid,
                  MemDep::Independent);
        for (std::size_t r = 0; r < robot_count; ++r) {
            mem.execFp(9);  // three axis tests, three abs, three adds
            if (robot[r].overlaps(obstacles[o]))
                hit = true;  // CCCD scans all pairs (speed over accuracy)
        }
    }
    return hit;
}

} // namespace tartan::robotics
