/**
 * @file
 * Set-associative cache model implementation.
 */

#include "sim/cache.hh"

#include <bit>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace tartan::sim {

Cache::Cache(const CacheParams &params)
    : config(params),
      indexing(params.indexing ? params.indexing : &defaultIndexing),
      stdIndexing(params.indexing == nullptr),
      fcpIndex(dynamic_cast<const FcpIndexing *>(indexing))
{
    TARTAN_ASSERT(config.sizeBytes % (config.assoc * config.lineBytes) == 0,
                  "cache geometry must divide evenly");
    setCount = config.sizeBytes / (config.assoc * config.lineBytes);
    TARTAN_ASSERT(std::has_single_bit(setCount),
                  "set count must be a power of two");
    lineBits = log2u(config.lineBytes);
    maxRecency = config.assoc - 1;
    const std::size_t ways = std::size_t(setCount) * config.assoc;
    tags.assign(ways, kInvalidTag);
    recency.assign(ways, 0);
    flags.assign(ways, 0);
    touched.assign(ways, 0);
    readyAt.assign(ways, 0);
}

std::uint64_t
Cache::regionOf(std::uint64_t line_number) const
{
    TARTAN_ASSERT(config.fcp, "regionOf requires an FCP configuration");
    return line_number >> log2u(config.fcp->regionBytes / config.lineBytes);
}

Cache::LookupResult
Cache::access(Addr addr, AccessType type, std::uint32_t size, Cycles now)
{
    const std::uint64_t line_number = addr >> lineBits;
    const std::size_t base = setIndex(line_number) * config.assoc;

    for (std::uint32_t way = 0; way < config.assoc; ++way) {
        if (tags[base + way] != line_number)
            continue;
        const std::size_t idx = base + way;
        ++statsData.hits;
        LookupResult res{true, (flags[idx] & kPrefetched) != 0, 0};
        if (flags[idx] & kPrefetched) {
            ++statsData.prefetchHits;
            if (readyAt[idx] > now)
                res.latePenalty = readyAt[idx] - now;
            flags[idx] &= static_cast<std::uint8_t>(~kPrefetched);
        }
        if (type == AccessType::Store)
            flags[idx] |= kDirty;
        touch(idx, addr, size);
        promote(base, way);
        return res;
    }
    ++statsData.misses;
    return LookupResult{false, false};
}

bool
Cache::probe(Addr addr) const
{
    const std::uint64_t line_number = addr >> lineBits;
    const std::size_t base = setIndex(line_number) * config.assoc;
    for (std::uint32_t way = 0; way < config.assoc; ++way)
        if (tags[base + way] == line_number)
            return true;
    return false;
}

std::uint32_t
Cache::victimWay(std::size_t set_base) const
{
    std::uint32_t victim = 0;
    std::uint32_t best = 0;
    bool found = false;
    for (std::uint32_t way = 0; way < config.assoc; ++way) {
        const std::size_t idx = set_base + way;
        if (!(flags[idx] & kValid))
            return way;
        if (!found || recency[idx] > best) {
            best = recency[idx];
            victim = way;
            found = true;
        }
    }
    return victim;
}

void
Cache::evictLine(std::size_t idx)
{
    ++statsData.evictions;
    if (flags[idx] & kDirty)
        ++statsData.dirtyEvictions;
    if (flags[idx] & kPrefetched)
        ++statsData.prefetchUnused;
    if (config.trackUdm) {
        statsData.udmFetchedBytes += config.lineBytes;
        statsData.udmUsedBytes +=
            4ull * static_cast<std::uint64_t>(std::popcount(touched[idx]));
    }
    if (evictionListener)
        evictionListener(tags[idx] << lineBits);
    flags[idx] = 0;
    touched[idx] = 0;
    tags[idx] = kInvalidTag;
    if (memoIdx == idx)
        memoIdx = kNoMemo;
}

Cache::Eviction
Cache::fill(Addr addr, bool prefetch, bool dirty, Cycles ready_at)
{
    const std::uint64_t line_number = addr >> lineBits;
    const std::size_t base = setIndex(line_number) * config.assoc;

    // Refilling a resident line is a no-op apart from flag updates.
    for (std::uint32_t way = 0; way < config.assoc; ++way) {
        if (tags[base + way] != line_number)
            continue;
        if (dirty)
            flags[base + way] |= kDirty;
        promote(base, way);
        return Eviction{};
    }

    return fillAbsent(base, line_number, prefetch, dirty, ready_at);
}

Cache::Eviction
Cache::fillKnownAbsent(Addr addr, bool prefetch, bool dirty,
                       Cycles ready_at)
{
    TARTAN_DCHECK(!probe(addr),
                  "fillKnownAbsent called on a resident line");
    const std::uint64_t line_number = addr >> lineBits;
    const std::size_t base = setIndex(line_number) * config.assoc;

    // Fused fill: one scan selects the victim exactly as victimWay()
    // would (first invalid way, else the earliest way of strictly
    // maximal recency), then one write pass retires the eviction, the
    // insertion aging and the FCP manipulation together. Element for
    // element this is the fillAbsent() sequence — aging and m(x) touch
    // disjoint state per way, so pass order cannot change the result.
    std::uint32_t victim = 0;
    std::uint32_t best = 0;
    bool found = false;
    for (std::uint32_t way = 0; way < config.assoc; ++way) {
        const std::size_t idx = base + way;
        if (!(flags[idx] & kValid)) {
            victim = way;
            found = false;
            break;
        }
        if (!found || recency[idx] > best) {
            best = recency[idx];
            victim = way;
            found = true;
        }
    }

    return finishFill(base, line_number, victim, prefetch, dirty,
                      ready_at);
}

Cache::Eviction
Cache::fillAtWay(Addr addr, std::uint32_t victim_way, bool prefetch,
                 bool dirty, Cycles ready_at)
{
    TARTAN_DCHECK(!probe(addr), "fillAtWay called on a resident line");
    const std::uint64_t line_number = addr >> lineBits;
    const std::size_t base = setIndex(line_number) * config.assoc;
    TARTAN_DCHECK(victim_way == victimWay(base),
                  "fillAtWay victim is stale (set modified since the "
                  "selecting scan)");
    return finishFill(base, line_number, victim_way, prefetch, dirty,
                      ready_at);
}

/**
 * Shared fill tail: eviction, insertion aging, FCP manipulation and
 * installation, with the victim already chosen. One write pass; element
 * for element the fillAbsent() sequence.
 */
Cache::Eviction
Cache::finishFill(std::size_t base, std::uint64_t line_number,
                  std::uint32_t victim, bool prefetch, bool dirty,
                  Cycles ready_at)
{
    const std::size_t vidx = base + victim;
    Eviction ev;
    if (flags[vidx] & kValid) {
        ev.valid = true;
        ev.lineAddr = tags[vidx] << lineBits;
        ev.dirty = (flags[vidx] & kDirty) != 0;
        evictLine(vidx);
    }

    if (!config.fcp) {
        // Branchless insertion aging: invalid ways' recency is dead
        // state (no reader looks at it before checking validity), and
        // the victim way's aged value is overwritten by the install
        // below, so neither needs excluding and the saturating
        // increment vectorises.
        for (std::uint32_t w = 0; w < config.assoc; ++w) {
            const std::size_t idx = base + w;
            recency[idx] += recency[idx] < maxRecency ? 1u : 0u;
        }
    } else {
        const std::uint32_t ceiling = manipCeiling();
        const std::uint64_t region = regionOf(line_number);
        for (std::uint32_t w = 0; w < config.assoc; ++w) {
            const std::size_t idx = base + w;
            if (w == victim || !(flags[idx] & kValid))
                continue;
            std::uint32_t rec = recency[idx];
            if (rec < maxRecency)
                ++rec;
            if (regionOf(tags[idx]) == region) {
                const std::uint32_t manipulated = config.fcp->apply(rec);
                rec = manipulated > ceiling ? ceiling : manipulated;
            }
            recency[idx] = rec;
        }
    }

    tags[vidx] = line_number;
    flags[vidx] = static_cast<std::uint8_t>(
        kValid | (dirty ? kDirty : 0) | (prefetch ? kPrefetched : 0));
    // Dead-store elimination the historical install skips: touched is
    // only ever read under trackUdm, and readyAt only under the
    // kPrefetched flag (which every prefetch fill rewrites before
    // setting), so the unconditional clears would drag two more host
    // cache lines into every fill for nothing.
    if (config.trackUdm)
        touched[vidx] = 0;
    recency[vidx] = 0;
    if (prefetch) {
        readyAt[vidx] = ready_at;
        ++statsData.prefetchFills;
    }
    memoIdx = vidx;
    return ev;
}

/** Victim selection + installation tail of the historical fill path. */
Cache::Eviction
Cache::fillAbsent(std::size_t base, std::uint64_t line_number,
                  bool prefetch, bool dirty, Cycles ready_at)
{
    const std::uint32_t way = victimWay(base);
    const std::size_t vidx = base + way;
    Eviction ev;
    if (flags[vidx] & kValid) {
        ev.valid = true;
        ev.lineAddr = tags[vidx] << lineBits;
        ev.dirty = (flags[vidx] & kDirty) != 0;
        evictLine(vidx);
    }
    // Insertion: age every resident line (saturating at the natural LRU
    // maximum) and install the new line at MRU.
    for (std::uint32_t w = 0; w < config.assoc; ++w) {
        const std::size_t idx = base + w;
        if ((flags[idx] & kValid) && recency[idx] < maxRecency)
            ++recency[idx];
    }
    tags[vidx] = line_number;
    flags[vidx] = static_cast<std::uint8_t>(
        kValid | (dirty ? kDirty : 0) | (prefetch ? kPrefetched : 0));
    touched[vidx] = 0;
    recency[vidx] = 0;
    readyAt[vidx] = prefetch ? ready_at : 0;
    memoIdx = vidx;
    if (prefetch)
        ++statsData.prefetchFills;

    // FCP: age every same-region line in this set through m(x), making
    // regions that already occupy much of the set evict sooner. The
    // manipulated recency may exceed the natural LRU maximum (up to
    // manipCeiling) so that an over-occupying region's lines outrank
    // naturally old lines of other regions at eviction time.
    if (config.fcp) {
        const std::uint32_t ceiling = manipCeiling();
        const std::uint64_t region = regionOf(line_number);
        for (std::uint32_t w = 0; w < config.assoc; ++w) {
            const std::size_t idx = base + w;
            if (w == way || !(flags[idx] & kValid))
                continue;
            if (regionOf(tags[idx]) == region) {
                const std::uint32_t manipulated =
                    config.fcp->apply(recency[idx]);
                recency[idx] =
                    manipulated > ceiling ? ceiling : manipulated;
            }
        }
    }
    return ev;
}

void
Cache::invalidate(Addr addr)
{
    const std::uint64_t line_number = addr >> lineBits;
    const std::size_t base = setIndex(line_number) * config.assoc;
    for (std::uint32_t way = 0; way < config.assoc; ++way) {
        if (tags[base + way] == line_number) {
            evictLine(base + way);
            return;
        }
    }
}

std::size_t
Cache::findWay(Addr addr) const
{
    const std::uint64_t line_number = addr >> lineBits;
    const std::size_t base = setIndex(line_number) * config.assoc;
    for (std::uint32_t way = 0; way < config.assoc; ++way)
        if (tags[base + way] == line_number)
            return base + way;
    return kNoMemo;
}

MesiState
Cache::lineState(Addr addr) const
{
    const std::size_t idx = findWay(addr);
    if (idx == kNoMemo || !(flags[idx] & kValid))
        return MesiState::Invalid;
    if (flags[idx] & kDirty)
        return MesiState::Modified;
    return (flags[idx] & kShared) ? MesiState::Shared
                                  : MesiState::Exclusive;
}

bool
Cache::snoopInvalidate(Addr addr, bool *was_dirty)
{
    const std::size_t idx = findWay(addr);
    if (idx == kNoMemo)
        return false;
    if (was_dirty)
        *was_dirty = (flags[idx] & kDirty) != 0;
    evictLine(idx);
    return true;
}

bool
Cache::snoopDowngrade(Addr addr, bool *was_dirty)
{
    const std::size_t idx = findWay(addr);
    if (idx == kNoMemo)
        return false;
    if (was_dirty)
        *was_dirty = (flags[idx] & kDirty) != 0;
    flags[idx] = static_cast<std::uint8_t>(
        (flags[idx] & ~kDirty) | kShared);
    return true;
}

void
Cache::markShared(Addr addr)
{
    const std::size_t idx = findWay(addr);
    if (idx != kNoMemo)
        flags[idx] |= kShared;
}

void
Cache::clearShared(Addr addr)
{
    const std::size_t idx = findWay(addr);
    if (idx != kNoMemo)
        flags[idx] &= static_cast<std::uint8_t>(~kShared);
}

std::uint64_t
Cache::dirtyLines() const
{
    std::uint64_t count = 0;
    for (const std::uint8_t f : flags)
        if ((f & (kValid | kDirty)) == (kValid | kDirty))
            ++count;
    return count;
}

std::uint64_t
Cache::prefetchedLines() const
{
    std::uint64_t count = 0;
    for (const std::uint8_t f : flags)
        if ((f & (kValid | kPrefetched)) == (kValid | kPrefetched))
            ++count;
    return count;
}

void
Cache::registerStats(StatsGroup &group) const
{
    group.addCounter("hits", &statsData.hits, "demand hits");
    group.addCounter("misses", &statsData.misses, "demand misses");
    group.addCounter("evictions", &statsData.evictions,
                     "valid lines displaced");
    group.addCounter("dirtyEvictions", &statsData.dirtyEvictions,
                     "displaced lines that were dirty");
    group.addCounter("prefetchFills", &statsData.prefetchFills,
                     "fills triggered by a prefetcher");
    group.addCounter("prefetchHits", &statsData.prefetchHits,
                     "hits on prefetched-unused lines");
    group.addCounter("prefetchUnused", &statsData.prefetchUnused,
                     "prefetched lines evicted unused");
    group.addCounter("udmFetchedBytes", &statsData.udmFetchedBytes,
                     "bytes brought in (UDM tracking)");
    group.addCounter("udmUsedBytes", &statsData.udmUsedBytes,
                     "bytes actually referenced");
    group.addDerived(
        "missRatio", [this] { return statsData.missRatio(); },
        "misses / accesses");
    group.addDerived(
        "residentDirty", [this] { return double(dirtyLines()); },
        "dirty lines currently resident");
    group.addDerived(
        "residentPrefetched", [this] { return double(prefetchedLines()); },
        "prefetched-unused lines currently resident");
}

void
Cache::setEvictionListener(EvictionListener listener)
{
    evictionListener = std::move(listener);
}

} // namespace tartan::sim
