/**
 * @file
 * Occupancy grids (2D and 3D) backed by arena storage, plus synthetic
 * environment generators with controllable sparse/dense structure.
 *
 * Every cell holds the occupancy probability as a float, matching
 * RoWild's occupancy-grid representation (paper §IV-B). The grids are
 * the memory substrate for ray casting, collision detection, MCL and
 * the graph-search planners.
 */

#ifndef TARTAN_ROBOTICS_GRID_HH
#define TARTAN_ROBOTICS_GRID_HH

#include <cstdint>

#include "robotics/trace.hh"
#include "sim/arena.hh"
#include "sim/rng.hh"

namespace tartan::robotics {

/** Occupancy threshold above which a cell counts as an obstacle. */
inline constexpr float kOccupied = 0.5f;

/** 2D occupancy grid. */
class OccupancyGrid2D
{
  public:
    OccupancyGrid2D(std::uint32_t width, std::uint32_t height,
                    tartan::sim::Arena &arena);

    std::uint32_t width() const { return gridW; }
    std::uint32_t height() const { return gridH; }
    std::size_t cells() const
    {
        return static_cast<std::size_t>(gridW) * gridH;
    }

    float *data() { return cellData; }
    const float *data() const { return cellData; }

    bool
    inBounds(std::int64_t x, std::int64_t y) const
    {
        return x >= 0 && y >= 0 && x < gridW && y < gridH;
    }

    std::size_t
    indexOf(std::uint32_t x, std::uint32_t y) const
    {
        return static_cast<std::size_t>(y) * gridW + x;
    }

    /** Raw (uninstrumented) cell access for setup and verification. */
    float &at(std::uint32_t x, std::uint32_t y)
    {
        return cellData[indexOf(x, y)];
    }
    float at(std::uint32_t x, std::uint32_t y) const
    {
        return cellData[indexOf(x, y)];
    }

    bool
    occupied(std::uint32_t x, std::uint32_t y) const
    {
        return at(x, y) > kOccupied;
    }

    /** Instrumented probability read. */
    float
    read(Mem &mem, std::uint32_t x, std::uint32_t y, PcId pc) const
    {
        return mem.loadv(cellData + indexOf(x, y), pc);
    }

    /** Instrumented log-odds style update (POM perception). */
    void
    update(Mem &mem, std::uint32_t x, std::uint32_t y, float delta,
           PcId pc)
    {
        float *cell = cellData + indexOf(x, y);
        float v = mem.loadv(cell, pc) + delta;
        v = v < 0.0f ? 0.0f : (v > 1.0f ? 1.0f : v);
        mem.storev(cell, v, pc);
        mem.execFp(3);
    }

    // --- Environment generators -----------------------------------

    /** Fill with free space and a solid border wall. */
    void clearWithBorder();
    /** Rectangular obstacle [x0,x1) x [y0,y1). */
    void addRect(std::uint32_t x0, std::uint32_t y0, std::uint32_t x1,
                 std::uint32_t y1);
    /** Random square obstacles covering roughly @p density of the area. */
    void scatterObstacles(tartan::sim::Rng &rng, double density,
                          std::uint32_t max_size = 8);
    /**
     * Split the map into a sparse half (few obstacles) and a dense half
     * (cluttered); drives the density heterogeneity ANL exploits.
     */
    void makeHeterogeneous(tartan::sim::Rng &rng, double sparse_density,
                           double dense_density);
    /**
     * Two large obstacles that fork routes into multiple diverged paths
     * (the FCP motivating scenario, paper Fig. 5.a).
     */
    void makeForkedCorridors(std::uint32_t lanes = 3);

  private:
    std::uint32_t gridW;
    std::uint32_t gridH;
    float *cellData;
};

/** 3D occupancy grid (FlyBot's airspace). */
class OccupancyGrid3D
{
  public:
    OccupancyGrid3D(std::uint32_t width, std::uint32_t height,
                    std::uint32_t depth, tartan::sim::Arena &arena);

    std::uint32_t width() const { return gridW; }
    std::uint32_t height() const { return gridH; }
    std::uint32_t depth() const { return gridD; }
    std::size_t cells() const
    {
        return static_cast<std::size_t>(gridW) * gridH * gridD;
    }

    float *data() { return cellData; }

    bool
    inBounds(std::int64_t x, std::int64_t y, std::int64_t z) const
    {
        return x >= 0 && y >= 0 && z >= 0 && x < gridW && y < gridH &&
               z < gridD;
    }

    std::size_t
    indexOf(std::uint32_t x, std::uint32_t y, std::uint32_t z) const
    {
        return (static_cast<std::size_t>(z) * gridH + y) * gridW + x;
    }

    float &at(std::uint32_t x, std::uint32_t y, std::uint32_t z)
    {
        return cellData[indexOf(x, y, z)];
    }

    bool
    occupied(std::uint32_t x, std::uint32_t y, std::uint32_t z) const
    {
        return cellData[indexOf(x, y, z)] > kOccupied;
    }

    float
    read(Mem &mem, std::uint32_t x, std::uint32_t y, std::uint32_t z,
         PcId pc) const
    {
        return mem.loadv(cellData + indexOf(x, y, z), pc);
    }

    /** Free space with floor/ceiling and random building-like blocks. */
    void makeCity(tartan::sim::Rng &rng, std::uint32_t buildings);

  private:
    std::uint32_t gridW;
    std::uint32_t gridH;
    std::uint32_t gridD;
    float *cellData;
};

} // namespace tartan::robotics

#endif // TARTAN_ROBOTICS_GRID_HH
