# Empty compiler generated dependencies file for tab04_overhead.
# This may be replaced when dependencies are built.
