/**
 * @file
 * Rapidly-exploring Random Tree planner in d-dimensional configuration
 * space (MoveBot, paper §III-B).
 *
 * RRT samples configurations, finds the nearest tree node (through a
 * pluggable NNS backend — the planner's bottleneck), extends towards
 * the sample, and validates the motion with cuboid-cuboid collision
 * detection. Its stochastic nature absorbs the approximation of
 * LSH-based NNS (paper §VI-B).
 */

#ifndef TARTAN_ROBOTICS_RRT_HH
#define TARTAN_ROBOTICS_RRT_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "robotics/collision.hh"
#include "robotics/nns.hh"
#include "sim/arena.hh"
#include "sim/rng.hh"

namespace tartan::robotics {

/** RRT configuration. */
struct RrtConfig {
    std::uint32_t dim = 5;          //!< degrees of freedom
    /**
     * Floats per node record (>= dim). Real RRT nodes cache forward
     * kinematics and collision metadata beside the configuration, so
     * the store is wide and index scans stride across it.
     */
    std::uint32_t strideFloats = 0;
    double stepSize = 0.05;         //!< extension step (unit cube space)
    double goalBias = 0.1;          //!< probability of sampling the goal
    double goalTolerance = 0.08;
    std::uint32_t maxIterations = 4000;
    std::uint32_t maxNodes = 4096;
    /**
     * Anytime mode: keep sampling for the full iteration budget after
     * the goal is first reached (the tree keeps improving and the
     * workload size becomes independent of when the goal was touched).
     */
    bool exploreFully = false;
};

/** Outcome of an RRT run. */
struct RrtResult {
    bool reachedGoal = false;
    std::uint32_t nodes = 0;
    std::uint64_t iterations = 0;
    std::uint64_t collisionChecks = 0;
    std::vector<std::uint32_t> path;  //!< node ids root..goal
    double pathLength = 0.0;
};

/**
 * The planner. Point storage is arena-backed so the NNS backend can
 * hold a stable base pointer.
 */
class RrtPlanner
{
  public:
    RrtPlanner(const RrtConfig &config, tartan::sim::Arena &arena);

    /** Base pointer of the configuration store (for NNS backends). */
    const float *store() const { return coords; }

    /**
     * Grow a tree from @p start towards @p goal.
     *
     * @param nns backend indexing this planner's store
     * @param is_blocked callable `bool(Mem&, const float*)` testing a
     *        configuration for collision (CCCD against the obstacle set)
     */
    template <typename BlockedFn>
    RrtResult
    plan(Mem &mem, NnsBackend &nns, const float *start, const float *goal,
         tartan::sim::Rng &rng, BlockedFn &&is_blocked)
    {
        RrtResult result;
        addNode(mem, nns, start, 0);
        result.nodes = 1;

        std::vector<float> sample(cfg.dim);
        for (std::uint64_t it = 0;
             it < cfg.maxIterations && nodeCount < cfg.maxNodes; ++it) {
            ++result.iterations;
            const bool to_goal = rng.uniform() < cfg.goalBias;
            for (std::uint32_t d = 0; d < cfg.dim; ++d)
                sample[d] = to_goal
                                ? goal[d]
                                : static_cast<float>(rng.uniform());
            mem.execFp(2 * cfg.dim);

            const std::int32_t near = nns.nearest(mem, sample.data());
            if (near < 0)
                continue;

            // Extend one step from the nearest node towards the sample.
            const float *from = node(static_cast<std::uint32_t>(near));
            std::vector<float> fresh(cfg.dim);
            double norm = 0.0;
            for (std::uint32_t d = 0; d < cfg.dim; ++d) {
                const double diff = sample[d] - from[d];
                norm += diff * diff;
            }
            norm = std::sqrt(norm);
            mem.execFp(3 * cfg.dim + 4);
            if (norm < 1e-9)
                continue;
            const double scale =
                std::min(1.0, cfg.stepSize / norm);
            for (std::uint32_t d = 0; d < cfg.dim; ++d)
                fresh[d] = static_cast<float>(
                    from[d] + (sample[d] - from[d]) * scale);

            ++result.collisionChecks;
            if (is_blocked(mem, fresh.data()))
                continue;

            const std::uint32_t id = addNode(
                mem, nns, fresh.data(), static_cast<std::uint32_t>(near));
            ++result.nodes;

            double to_goal_d = 0.0;
            for (std::uint32_t d = 0; d < cfg.dim; ++d) {
                const double diff = fresh[d] - goal[d];
                to_goal_d += diff * diff;
            }
            mem.execFp(3 * cfg.dim);
            if (!result.reachedGoal &&
                std::sqrt(to_goal_d) <= cfg.goalTolerance) {
                result.reachedGoal = true;
                // Walk parents back to the root.
                std::uint32_t s = id;
                while (true) {
                    result.path.push_back(s);
                    if (parents[s] == s)
                        break;
                    s = parents[s];
                }
                std::reverse(result.path.begin(), result.path.end());
                for (std::size_t i = 1; i < result.path.size(); ++i)
                    result.pathLength += nodeDistance(result.path[i - 1],
                                                      result.path[i]);
                if (!cfg.exploreFully)
                    break;
            }
        }
        return result;
    }

    const float *
    node(std::uint32_t id) const
    {
        return coords + static_cast<std::size_t>(id) * stride();
    }
    std::uint32_t
    stride() const
    {
        return cfg.strideFloats ? cfg.strideFloats : cfg.dim;
    }
    std::uint32_t size() const { return nodeCount; }

  private:
    std::uint32_t addNode(Mem &mem, NnsBackend &nns, const float *q,
                          std::uint32_t parent);
    double nodeDistance(std::uint32_t a, std::uint32_t b) const;

    RrtConfig cfg;
    float *coords;
    std::vector<std::uint32_t> parents;
    std::uint32_t nodeCount = 0;
};

} // namespace tartan::robotics

#endif // TARTAN_ROBOTICS_RRT_HH
