file(REMOVE_RECURSE
  "CMakeFiles/golden_cache_test.dir/golden_cache_test.cc.o"
  "CMakeFiles/golden_cache_test.dir/golden_cache_test.cc.o.d"
  "golden_cache_test"
  "golden_cache_test.pdb"
  "golden_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
