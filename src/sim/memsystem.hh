/**
 * @file
 * Per-core memory path: private L1 and L2, shared L3, DRAM backend,
 * an L2-attached prefetcher, write-through (MTRR-style) ranges, and
 * selective-caching (no-allocate) ranges.
 *
 * Hot path: access() is inline. With no fault injector, trace session
 * or host profiler attached it resolves an L1 hit with one TLB probe
 * (AddrMap::translate) plus one inline lookup (Cache::lookupFast) and
 * no out-of-line call, and routes a proven L1 miss into a batched miss
 * transaction (accessMissFast): inline L2/L3 lookups, fused
 * known-absent fills, and an L2->L3 victim write-back chain collected
 * into a per-miss scratch record and retired through a coalesced
 * write-back queue once the fills are done, instead of interleaving a
 * probe/fill ping-pong per victim. Everything else falls through to
 * the full hierarchy walk in accessHooked(). The fast paths are
 * observationally equivalent: every stats counter, trace event and
 * latency they produce is bit-identical to the slow path
 * (setFastPath(false) forces the historical code for A/B runs and
 * equivalence tests).
 */

#ifndef TARTAN_SIM_MEMSYSTEM_HH
#define TARTAN_SIM_MEMSYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/addrmap.hh"
#include "sim/cache.hh"
#include "sim/prefetcher.hh"
#include "sim/types.hh"

namespace tartan::sim {

class CaptureSession;
class FaultInjector;
class StatsGroup;
class TraceSession;
class Uncore;
struct HostProfiler;

/** Configuration of one core's memory path. */
struct MemPathParams {
    CacheParams l1;  //!< private first-level cache
    CacheParams l2;  //!< private second-level cache
    Cycles l3Latency = 45;    //!< shared-L3 hit latency
    Cycles dramLatency = 200; //!< DRAM access latency beyond L3
    /** Cycle spacing between queued prefetch fills (DRAM burst model). */
    Cycles prefetchBurst = 8;
};

/** Traffic and prefetch statistics of one memory path. */
struct MemPathStats {
    std::uint64_t l3Accesses = 0;   //!< demand + prefetch L3 lookups
    std::uint64_t l3Writebacks = 0; //!< dirty L2 victims written to L3
    std::uint64_t dramReads = 0;    //!< L3 miss fetches
    std::uint64_t dramWrites = 0;   //!< dirty L3 victims + WT stores
    std::uint64_t wtStores = 0;     //!< stores absorbed by WT ranges
    std::uint64_t pfIssued = 0;     //!< prefetch fills issued to L2
    std::uint64_t pfDropped = 0;    //!< prefetch candidates dropped
    std::uint64_t pfHitsTimely = 0; //!< prefetch fully hid the miss
    std::uint64_t pfHitsLate = 0;   //!< prefetch arrived late
    std::uint64_t pfLateCycles = 0; //!< residual cycles paid on late hits
    /**
     * Prefetched lines consumed outside the demand-miss path: touched
     * by a write-back fill or a write-through store update. Keeping
     * these distinct from the timely/late demand hits is what makes
     * the cache-side and path-side prefetch counters sum consistently.
     */
    std::uint64_t pfHitsOther = 0;

    /** Total L3-side traffic events (lookups plus writebacks). */
    std::uint64_t l3Traffic() const { return l3Accesses + l3Writebacks; }
};

/**
 * The memory path walks L1 -> L2 -> L3 -> DRAM, modelling a
 * non-inclusive hierarchy with write-back write-allocate caches.
 */
class MemPath
{
  public:
    /**
     * @param params private-cache configuration
     * @param shared_l3 the shared last-level cache (not owned)
     */
    MemPath(const MemPathParams &params, Cache *shared_l3);

    /**
     * Perform a demand access and return the observed latency.
     *
     * Inline fast path: translate through the AddrMap TLB, then resolve
     * an L1 memo hit in place. Falls back to the full hierarchy walk
     * whenever the memo misses, a WT range might match a store, or an
     * observer (faults / trace / host profiler) is attached.
     *
     * @param now current core cycle (prefetch timeliness)
     */
    AccessResult
    access(Addr addr, AccessType type, std::uint32_t size, PcId pc,
           Cycles now)
    {
        if (hostProf)
            return accessProfiled(addr, type, size, pc, now);
        const Addr sim = addrMap ? addrMap->translate(addr) : addr;
        if (fastPath && !faults && !trace && !uncoreHook &&
            (type != AccessType::Store || wtRanges.empty() ||
             !inRange(wtRanges, addr))) {
            std::uint32_t l1_victim = 0;
            const auto looked =
                l1Cache.lookupForFill(sim, type, size, true, &l1_victim);
            if (looked == Cache::FastLookup::Hit) {
                AccessResult result;
                result.latency = config.l1.latency;
                result.level = MemLevel::L1;
                return result;
            }
            if (looked == Cache::FastLookup::Miss) {
                // The inline lookup already proved and counted the L1
                // miss — and selected the fill victim; continue with
                // the walk below it.
                AccessResult result;
                result.latency = config.l1.latency;
                return accessMissFast(addr, sim, type, size, pc, now,
                                      result, l1_victim);
            }
        }
        return accessHooked(addr, sim, type, size, pc, now);
    }

    /**
     * Access every cache line of the contiguous span
     * [base, base+bytes) as independent loads (a wide vector load) and
     * return the worst per-line result. With deterministic addressing
     * enabled the line count is derived from the span's translated
     * grains, so it no longer depends on the host base's offset within
     * a line. Spans that map linearly through a single arena segment
     * hoist the segment lookup out of the per-line loop
     * (AddrMap::linearSpan) and walk host lines directly.
     */
    AccessResult accessRange(Addr base, std::uint32_t bytes, PcId pc,
                             Cycles now);

    /**
     * Route all subsequent accesses through an AddrMap: host addresses
     * are translated into a deterministic simulated address space
     * (registered arena segments map linearly; everything else through
     * a 16-byte-grain first-touch table), so cache behaviour is
     * bit-identical across runs regardless of heap ASLR or which
     * thread's malloc arena the workload allocated from. Write-through
     * and no-allocate ranges keep matching on *host* addresses.
     */
    void enableDeterministicAddressing();
    /** Register an arena as a linearly-mapped AddrMap segment. */
    void mapSegment(Addr base, std::size_t bytes);
    /** The translator, or null when deterministic addressing is off. */
    AddrMap *addrTranslator() { return addrMap.get(); }

    /** Attach (or replace) the L2 prefetcher. */
    void setPrefetcher(std::unique_ptr<Prefetcher> pf);
    /** The attached prefetcher, or null. */
    Prefetcher *prefetcher() { return pf.get(); }

    /**
     * Attach (or detach, with nullptr) a trace session: every demand
     * access is attributed to its PcId site and servicing level. Purely
     * observational — never changes latencies or cache state.
     */
    void setTrace(TraceSession *session) { trace = session; }

    /**
     * Attach (or detach, with nullptr) a fault injector: demand
     * accesses may be charged latency spikes and prefetch issue may be
     * suppressed during blackout windows. With no injector attached the
     * path's timing is bit-identical to an unfaulted build.
     */
    void setFaultInjector(FaultInjector *inj) { faults = inj; }

    /**
     * Attach (or detach, with nullptr) a capture session: address-space
     * registrations (mapSegment, write-through and no-allocate ranges)
     * are recorded in stream order for replay. Purely observational.
     */
    void setCapture(CaptureSession *session) { capture = session; }

    /**
     * Attach this path to a shared uncore as core @p core_id (must
     * match the id the uncore's attach() returned for this path). A
     * coherent path takes the hooked hierarchy walk on every access —
     * store upgrades, miss snoops, crossbar hops and banked DRAM
     * timing all resolve through the uncore — while a path with no
     * uncore runs the exact pre-multi-core code, fast paths included.
     */
    void
    attachUncore(Uncore *uncore, std::uint32_t core_id)
    {
        uncoreHook = uncore;
        pathId = core_id;
    }

    /** The attached uncore, or null on a single-core path. */
    Uncore *uncore() { return uncoreHook; }

    /**
     * Attach (or detach, with nullptr) a host-time profiler: every
     * demand access is timed per pipeline layer (translate / cache /
     * prefetch). Purely observational on the modeled state; profiled
     * accesses take the full lookup path, so the breakdown reflects
     * the unmemoized pipeline.
     */
    void setHostProfiler(HostProfiler *prof) { hostProf = prof; }

    /**
     * Toggle the whole fast-path stack (default on): the inline
     * L1/L2/L3 lookups, the cache-side MRU memos, the merged miss walk
     * (accessMissFast), the AddrMap single-probe TLB and the
     * accessRange segment hoist. Off restores the historical code paths
     * bit-for-bit; behaviour is identical either way, so this exists
     * purely for self-benchmarking and equivalence tests. The shared L3
     * is toggled too, so configure every path of a system identically.
     */
    void
    setFastPath(bool on)
    {
        fastPath = on;
        l1Cache.setFastLookup(on);
        l2Cache.setFastLookup(on);
        l3Cache->setFastLookup(on);
        if (addrMap)
            addrMap->setFastPath(on);
        if (pf)
            pf->setFastMode(on);
    }

    /** Declare a write-through (MTRR WT) range [base, base+bytes). */
    void addWriteThroughRange(Addr base, std::size_t bytes);
    /**
     * End-of-run drain: account the write-back traffic the resident
     * dirty private-cache lines will eventually cost the L3.
     * Idempotent — a second call (a double finish()) adds nothing, so
     * l3Writebacks cannot be double-counted.
     */
    void drainDirty();
    /** Declare a no-allocate (streaming load) range. */
    void addNoAllocateRange(Addr base, std::size_t bytes);

    /** Private first-level data cache. */
    Cache &l1() { return l1Cache; }
    /** Private second-level cache (prefetcher fill target). */
    Cache &l2() { return l2Cache; }
    /** Shared last-level cache. */
    Cache &l3() { return *l3Cache; }

    /**
     * Register path counters, the private caches (children "l1"/"l2"),
     * the attached prefetcher (child "pf"), and the end-to-end
     * prefetch-accounting invariants into @p group. Attach the
     * prefetcher before registering: a later setPrefetcher() is not
     * reflected in an already-registered tree.
     */
    void registerStats(StatsGroup &group);

    /** Path-level traffic and prefetch counters. */
    MemPathStats stats;
    /** The configuration this path was built from. */
    const MemPathParams &params() const { return config; }

  private:
    struct Range {
        Addr base;
        Addr limit;
        bool contains(Addr a) const { return a >= base && a < limit; }
    };

    bool
    inRange(const std::vector<Range> &ranges, Addr addr) const
    {
        for (const Range &r : ranges)
            if (r.contains(addr))
                return true;
        return false;
    }

    /** access() after translation: @p host drives the range checks,
     *  @p sim is what the caches see. */
    AccessResult accessHooked(Addr host, Addr sim, AccessType type,
                              std::uint32_t size, PcId pc, Cycles now);
    AccessResult accessImpl(Addr host, Addr sim, AccessType type,
                            std::uint32_t size, PcId pc, Cycles now);
    /** accessImpl after an L1 miss: L2 lookup, prefetch, fills.
     *  @p result carries the latency accumulated so far. */
    AccessResult accessBelowL1(Addr host, Addr sim, AccessType type,
                               std::uint32_t size, PcId pc, Cycles now,
                               AccessResult result);
    /**
     * Fast-path twin of accessBelowL1, reachable only after the inline
     * L1 lookup proved (and counted) the miss with no fault injector,
     * trace session or host profiler attached. Runs the miss as one
     * batched transaction over the `txn` scratch record: inline L2/L3
     * lookups, fused known-absent fills, and every L3 write-back the
     * demand fill chain produces coalesced into txn.l3Writebacks and
     * retired FIFO by flushL3Writebacks once the fills are done. The
     * queue holds only write-backs ordered *after* every inline L3
     * operation of the transaction (the prefetch fetches and the
     * demand fetch), so the L3 observes exactly the historical
     * per-cache operation sequence. Observable state is bit-identical
     * to accessBelowL1.
     *
     * @param l1_victim the L1 victim way the caller's lookupForFill
     *        miss selected; still current at the L1 fill because the
     *        transaction touches only the L2/L3 before it.
     */
    AccessResult accessMissFast(Addr host, Addr sim, AccessType type,
                                std::uint32_t size, PcId pc, Cycles now,
                                AccessResult result,
                                std::uint32_t l1_victim);
    /** fetchThroughL3 with an inline L3 lookup and known-absent fill. */
    Cycles fetchThroughL3Fast(Addr addr, Cycles now);
    /** issuePrefetches with known-absent L2 fills (fast path only). */
    void issuePrefetchesFast(const std::vector<Addr> &targets,
                             Cycles now);
    /** Retire txn.l3Writebacks in FIFO order via the fused L3 path. */
    void flushL3Writebacks(Cycles now);
    /** access() with per-layer host timing (hostProf attached). */
    AccessResult accessProfiled(Addr addr, AccessType type,
                                std::uint32_t size, PcId pc, Cycles now);
    void writebackToL2(Addr line_addr, Cycles now);
    void writebackToL3(Addr line_addr, Cycles now);
    /**
     * writebackToL2 with one inline lookup replacing the probe +
     * access/fill pair (fast path only). An L3 write-back produced by
     * the L2 victim is appended to txn.l3Writebacks instead of being
     * performed inline; the owning miss transaction flushes the queue.
     */
    void writebackToL2Fast(Addr line_addr, Cycles now);
    /** writebackToL3 with one inline lookup replacing the probe +
     *  access/fill pair (fast path only). Flushes any queued
     *  write-backs first so the L3 operation order stays historical. */
    void writebackToL3Fast(Addr line_addr, Cycles now);
    /** Fetch a line into L3 if absent; returns latency beyond L2. */
    Cycles fetchThroughL3(Addr addr, Cycles now);
    void issuePrefetches(const std::vector<Addr> &targets, Cycles now);
    /** Largest beyond-L2 latency an L3 hit can cost (level split). */
    Cycles l3HitCeiling() const;

    MemPathParams config;
    Cache l1Cache;
    Cache l2Cache;
    Cache *l3Cache;
    TraceSession *trace = nullptr;  //!< observability hook (not owned)
    FaultInjector *faults = nullptr;  //!< fault-injection hook (not owned)
    HostProfiler *hostProf = nullptr; //!< self-profiling hook (not owned)
    CaptureSession *capture = nullptr; //!< capture hook (not owned)
    Uncore *uncoreHook = nullptr;  //!< shared uncore (not owned)
    std::uint32_t pathId = 0;      //!< this path's core id at the uncore
    bool fastPath = true;  //!< inline memo + TLB + span hoist enabled
    std::unique_ptr<Prefetcher> pf;
    std::unique_ptr<AddrMap> addrMap;  //!< null = host addresses pass through
    std::vector<Range> wtRanges;
    std::vector<Range> noAllocRanges;
    std::vector<Addr> pfQueue;  //!< reused scratch buffer (slow path)

    /**
     * Per-miss transaction scratch of the fast path: the prefetch
     * candidates the L2 observation produced and the L3 write-backs
     * coalesced out of the demand fill chain. Member state (not locals)
     * so the buffers' capacity persists across misses and the hot path
     * stays allocation-free after warm-up.
     */
    struct MissTxn {
        std::vector<Addr> pfTargets;     //!< prefetcher proposals
        std::vector<Addr> l3Writebacks;  //!< coalesced write-back queue
    };
    MissTxn txn;
    bool drainAccounted = false;  //!< drainDirty already ran (idempotence)
};

} // namespace tartan::sim

#endif // TARTAN_SIM_MEMSYSTEM_HH
