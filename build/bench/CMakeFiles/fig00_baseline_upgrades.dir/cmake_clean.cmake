file(REMOVE_RECURSE
  "CMakeFiles/fig00_baseline_upgrades.dir/fig00_baseline_upgrades.cc.o"
  "CMakeFiles/fig00_baseline_upgrades.dir/fig00_baseline_upgrades.cc.o.d"
  "fig00_baseline_upgrades"
  "fig00_baseline_upgrades.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig00_baseline_upgrades.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
