# Empty dependencies file for tab02_nn_error.
# This may be replaced when dependencies are built.
