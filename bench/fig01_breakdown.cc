/**
 * @file
 * Fig. 1 reproduction: execution-time breakdown per robot, showing the
 * bottleneck operation's share on the upgraded baseline (B) and how
 * Tartan (T) shrinks it. The 12 runs (6 robots x {B, T}) execute
 * through a RunPool.
 */

#include "bench_util.hh"

using namespace tartan::bench;
using namespace tartan::workloads;

namespace {

/** Share of work cycles spent in the named bottleneck kernel. */
double
bottleneckShare(const RunResult &res, const std::string &kernel)
{
    for (const auto &k : res.kernels)
        if (k.name == kernel)
            return res.workCycles
                       ? double(k.cycles) / double(res.workCycles)
                       : 0.0;
    return 0.0;
}

} // namespace

int
main()
{
    BenchReporter rep("fig01_breakdown",
                      "bottlenecks: DeliBot raycast 74%, PatrolBot "
                      "inference 93%, MoveBot NNS 45%, HomeBot T-pred "
                      "56%, FlyBot heuristic 74%, CarriBot collision "
                      "81%; Tartan shrinks the bottleneck bar");
    rep.config("baseline", "B=baseline/legacy");
    rep.config("tartan", "T=tartan/approximate");

    RunPool pool;
    std::vector<Cell<RunResult>> jobs;
    for (const auto &robot : robotSuite()) {
        jobs.push_back(cell(rep, std::string(robot.name) + "_B",
                            robot.run, MachineSpec::baseline(),
                            options(SoftwareTier::Legacy)));
        jobs.push_back(cell(rep, std::string(robot.name) + "_T",
                            robot.run, MachineSpec::tartan(),
                            options(SoftwareTier::Approximate)));
    }
    const std::vector<RunResult> results =
        runAll(rep, pool, std::move(jobs));

    std::printf("%-10s %-12s %8s %8s | %10s\n", "robot", "bottleneck",
                "B share", "T share", "T time/B");

    std::vector<double> speedups;
    std::size_t r = 0;
    for (const auto &robot : robotSuite()) {
        const RunResult &base = results[r++];
        const RunResult &tartan_res = results[r++];
        // Identify the baseline's dominant kernel and report both
        // machines' share of it.
        const std::string bk = base.bottleneckKernel;
        const double b_share = bottleneckShare(base, bk);
        const double t_share = bottleneckShare(tartan_res, bk);
        const double s = speedup(double(base.wallCycles),
                                 double(tartan_res.wallCycles));
        std::printf("%-10s %-12s %7.1f%% %7.1f%% | %9.2fx\n",
                    robot.name, bk.c_str(), 100 * b_share, 100 * t_share,
                    s);
        reportRun(rep, std::string(robot.name) + "/B", base);
        reportRun(rep, std::string(robot.name) + "/T", tartan_res);
        reportCpi(rep, std::string(robot.name) + "/B", base);
        reportCpi(rep, std::string(robot.name) + "/T", tartan_res);
        rep.kernelMetric(robot.name, "baselineBottleneckShare", b_share);
        rep.kernelMetric(robot.name, "tartanBottleneckShare", t_share);
        rep.kernelMetric(robot.name, "speedup", s);
        speedups.push_back(s);
    }
    rep.metric("gmeanSpeedup", geomean(speedups));
    rep.note("every Tartan bottleneck share <= the baseline share; "
             "bottleneck kernels match the paper's list");
    std::printf("\nShape check: every Tartan bottleneck share <= the "
                "baseline share,\nand the bottleneck kernels match the "
                "paper's list above.\n");
    return campaignExit(rep);
}
