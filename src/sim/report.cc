/**
 * @file
 * BenchReporter implementation and schema validation.
 */

#include "sim/report.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "sim/env.hh"
#include "sim/fault.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace tartan::sim {

BenchReporter::BenchReporter(std::string bench_name, std::string paper_note)
    : benchName(std::move(bench_name)), paperNote(std::move(paper_note))
{
    // The effective fault plan (or its absence) is part of every
    // manifest so a BENCH file is self-describing about injection.
    if (auto plan = FaultPlan::fromEnv()) {
        faultSpec = plan->spec();
        faultSeed = plan->seed();
    }
    std::printf("\n=============================================="
                "==================\n");
    std::printf("%s\n", benchName.c_str());
    std::printf("paper: %s\n", paperNote.c_str());
    std::printf("=============================================="
                "==================\n");
}

BenchReporter::~BenchReporter()
{
    if (!written)
        writeFile();
}

void
BenchReporter::config(const std::string &key, const std::string &value)
{
    configVals[key] = ConfigVal{false, value, 0.0};
}

void
BenchReporter::config(const std::string &key, double value)
{
    configVals[key] = ConfigVal{true, {}, value};
}

void
BenchReporter::metric(const std::string &name, double value)
{
    metrics[name] = value;
}

void
BenchReporter::kernelMetric(const std::string &kernel, const std::string &key,
                            double value)
{
    for (auto &[name, row] : kernelRows) {
        if (name == kernel) {
            row[key] = value;
            return;
        }
    }
    kernelRows.emplace_back(kernel,
                            std::map<std::string, double>{{key, value}});
}

void
BenchReporter::cpiRow(const std::string &run, const std::string &kernel,
                      Cycles cycles, const CpiStack &stack)
{
    cpiRows.push_back(CpiRowData{run, kernel, cycles, stack});
}

void
BenchReporter::note(const std::string &text)
{
    noteText = text;
}

void
BenchReporter::cellFailure(const std::string &cell,
                           const std::string &err_class,
                           const std::string &detail, unsigned attempts)
{
    failureRows.push_back(FailureRow{cell, err_class, detail, attempts});
}

void
BenchReporter::campaignStats(std::uint64_t simulated,
                             std::uint64_t journal_hits,
                             std::uint64_t cache_hits, std::uint64_t failed)
{
    campaignTotals.recorded = true;
    campaignTotals.simulated += simulated;
    campaignTotals.journalHits += journal_hits;
    campaignTotals.cacheHits += cache_hits;
    campaignTotals.failed += failed;
}

void
BenchReporter::captureStats(std::uint64_t captures,
                            std::uint64_t file_hits, std::uint64_t replays)
{
    captureTotals.recorded = true;
    captureTotals.captures = captures;
    captureTotals.fileHits = file_hits;
    captureTotals.replays = replays;
}

std::unique_ptr<TraceSession>
BenchReporter::makeTrace(const std::string &run)
{
    auto session = TraceSession::fromEnv(benchName, run);
    if (session) {
        tracePaths.push_back(session->tracePath());
        tracePaths.push_back(session->epochsPath());
    }
    return session;
}

void
BenchReporter::writeJson(std::ostream &os) const
{
    os << "{\n  \"bench\": ";
    json::writeString(os, benchName);
    os << ",\n  \"manifest\": {\n    \"git\": ";
    json::writeString(os, gitDescribe());
    os << ",\n    \"timestamp\": ";
    json::writeString(os, isoTimestamp());
    os << ",\n    \"paper\": ";
    json::writeString(os, paperNote);
    os << ",\n    \"faults\": ";
    json::writeString(os, faultSpec);
    os << ",\n    \"faultSeed\": ";
    json::writeNumber(os, static_cast<double>(faultSeed));
    // The CPI taxonomy is echoed in every manifest — with or without
    // cpi rows — so any payload states which category schema it was
    // built against.
    os << ",\n    \"cpiTaxonomyVersion\": "
       << kCpiTaxonomyVersion << ",\n    \"cpiCategories\": [";
    for (std::size_t i = 0; i < kNumCpiCats; ++i) {
        os << (i ? ", " : "");
        json::writeString(os, cpiCatName(CpiCat(i)));
    }
    os << "]";
    if (!noteText.empty()) {
        os << ",\n    \"note\": ";
        json::writeString(os, noteText);
    }
    if (!tracePaths.empty()) {
        os << ",\n    \"traces\": [";
        bool tfirst = true;
        for (const std::string &path : tracePaths) {
            os << (tfirst ? "" : ", ");
            tfirst = false;
            json::writeString(os, path);
        }
        os << "]";
    }
    // Campaign accounting lives in the manifest on purpose: bench_diff
    // compares config/metrics/kernels/cpi only, so where a result came
    // from (fresh, journal, cache) never perturbs payload comparison.
    if (campaignTotals.recorded) {
        os << ",\n    \"campaign\": {\"simulated\": "
           << campaignTotals.simulated
           << ", \"journalHits\": " << campaignTotals.journalHits
           << ", \"cacheHits\": " << campaignTotals.cacheHits
           << ", \"failed\": " << campaignTotals.failed << "}";
    }
    if (captureTotals.recorded) {
        os << ",\n    \"capture\": {\"captures\": "
           << captureTotals.captures
           << ", \"fileHits\": " << captureTotals.fileHits
           << ", \"replays\": " << captureTotals.replays << "}";
    }
    if (!failureRows.empty()) {
        os << ",\n    \"failures\": [";
        bool ffirst = true;
        for (const FailureRow &row : failureRows) {
            os << (ffirst ? "\n" : ",\n") << "      {\"cell\": ";
            ffirst = false;
            json::writeString(os, row.cell);
            os << ", \"class\": ";
            json::writeString(os, row.errClass);
            os << ", \"detail\": ";
            json::writeString(os, row.detail);
            os << ", \"attempts\": " << row.attempts << "}";
        }
        os << "\n    ]";
    }
    os << "\n  },\n  \"config\": {";
    bool first = true;
    for (const auto &[key, val] : configVals) {
        os << (first ? "\n" : ",\n") << "    ";
        first = false;
        json::writeString(os, key);
        os << ": ";
        if (val.isNum)
            json::writeNumber(os, val.num);
        else
            json::writeString(os, val.str);
    }
    os << (first ? "" : "\n  ") << "},\n  \"metrics\": {";
    first = true;
    for (const auto &[key, val] : metrics) {
        os << (first ? "\n" : ",\n") << "    ";
        first = false;
        json::writeString(os, key);
        os << ": ";
        json::writeNumber(os, val);
    }
    os << (first ? "" : "\n  ") << "},\n  \"kernels\": [";
    first = true;
    for (const auto &[name, row] : kernelRows) {
        os << (first ? "\n" : ",\n") << "    {\"name\": ";
        first = false;
        json::writeString(os, name);
        os << ", \"metrics\": {";
        bool rfirst = true;
        for (const auto &[key, val] : row) {
            os << (rfirst ? "" : ", ");
            rfirst = false;
            json::writeString(os, key);
            os << ": ";
            json::writeNumber(os, val);
        }
        os << "}}";
    }
    os << (first ? "" : "\n  ") << "]";
    if (!cpiRows.empty()) {
        os << ",\n  \"cpi\": {\n    \"taxonomyVersion\": "
           << kCpiTaxonomyVersion << ",\n    \"categories\": [";
        for (std::size_t i = 0; i < kNumCpiCats; ++i) {
            os << (i ? ", " : "");
            json::writeString(os, cpiCatName(CpiCat(i)));
        }
        os << "],\n    \"rows\": [";
        first = true;
        for (const CpiRowData &row : cpiRows) {
            os << (first ? "\n" : ",\n") << "      {\"run\": ";
            first = false;
            json::writeString(os, row.run);
            os << ", \"kernel\": ";
            json::writeString(os, row.kernel);
            os << ", \"cycles\": " << row.cycles << ", \"stack\": {";
            for (std::size_t i = 0; i < kNumCpiCats; ++i) {
                os << (i ? ", " : "");
                json::writeString(os, cpiCatName(CpiCat(i)));
                os << ": " << row.stack.cat[i];
            }
            os << "}}";
        }
        os << (first ? "" : "\n    ") << "]\n  }";
    }
    os << "\n}\n";
}

std::string
BenchReporter::outputPath() const
{
    // RunEnv snapshot, not getenv: the destination is fixed for the
    // process lifetime and safe to query from any thread.
    std::string dir = RunEnv::get().benchDir;
    if (!dir.empty() && dir.back() != '/')
        dir += '/';
    return dir + "BENCH_" + benchName + ".json";
}

bool
BenchReporter::writeFile()
{
    written = true;
    const std::string path = outputPath();
    // Rename-into-place so two bench processes sharing one output
    // directory can never interleave writes or expose a torn file.
    if (!json::writeFileDurable(
            path, [this](std::ostream &os) { writeJson(os); }, "bench"))
        return false;
    std::printf("\n[json: %s]\n", path.c_str());
    return true;
}

namespace {

bool
schemaFail(std::string *err, const std::string &msg)
{
    if (err && err->empty())
        *err = msg;
    return false;
}

bool
allNumbers(const json::Value &obj, std::string *err, const char *where)
{
    for (const auto &[key, val] : obj.object)
        if (!val.isNumber())
            return schemaFail(err, std::string(where) + "." + key +
                                       " is not a number");
    return true;
}

} // namespace

bool
validateBenchJson(std::string_view text, std::string *err)
{
    json::Value doc;
    std::string perr;
    if (!json::parse(text, doc, &perr))
        return schemaFail(err, "parse error: " + perr);
    if (!doc.isObject())
        return schemaFail(err, "document is not an object");

    const json::Value *bench = doc.find("bench");
    if (!bench || !bench->isString() || bench->string.empty())
        return schemaFail(err, "missing or invalid 'bench'");

    const json::Value *manifest = doc.find("manifest");
    if (!manifest || !manifest->isObject())
        return schemaFail(err, "missing or invalid 'manifest'");
    for (const char *key : {"git", "timestamp", "paper"}) {
        const json::Value *v = manifest->find(key);
        if (!v || !v->isString())
            return schemaFail(err,
                              std::string("manifest.") + key + " missing");
    }
    // Optional but typed: the fault-plan echo added in the robustness
    // PR. Absent in hand-written / historical documents is fine.
    if (const json::Value *v = manifest->find("faults"))
        if (!v->isString())
            return schemaFail(err, "manifest.faults is not a string");
    if (const json::Value *v = manifest->find("faultSeed"))
        if (!v->isNumber())
            return schemaFail(err, "manifest.faultSeed is not a number");
    // The CPI taxonomy echo: optional (historical documents), but when
    // present it must match the compiled taxonomy exactly — a payload
    // built against another category schema must be rejected, not
    // silently half-compared.
    if (const json::Value *v = manifest->find("cpiTaxonomyVersion")) {
        if (!v->isNumber())
            return schemaFail(err,
                              "manifest.cpiTaxonomyVersion not a number");
        if (v->number != double(kCpiTaxonomyVersion))
            return schemaFail(err, "manifest.cpiTaxonomyVersion " +
                                       std::to_string(int(v->number)) +
                                       " != compiled taxonomy version");
    }
    // Campaign-resilience echo: optional (pre-campaign documents), but
    // when present both blocks must be well-typed — a manifest that
    // claims quarantined cells without naming them is invalid.
    if (const json::Value *v = manifest->find("campaign")) {
        if (!v->isObject())
            return schemaFail(err, "manifest.campaign is not an object");
        for (const char *key :
             {"simulated", "journalHits", "cacheHits", "failed"}) {
            const json::Value *field = v->find(key);
            if (!field || !field->isNumber())
                return schemaFail(err, std::string("manifest.campaign.") +
                                           key + " missing or non-number");
        }
    }
    if (const json::Value *v = manifest->find("capture")) {
        if (!v->isObject())
            return schemaFail(err, "manifest.capture is not an object");
        for (const char *key : {"captures", "fileHits", "replays"}) {
            const json::Value *field = v->find(key);
            if (!field || !field->isNumber())
                return schemaFail(err, std::string("manifest.capture.") +
                                           key + " missing or non-number");
        }
    }
    if (const json::Value *v = manifest->find("failures")) {
        if (!v->isArray())
            return schemaFail(err, "manifest.failures is not an array");
        for (std::size_t i = 0; i < v->array.size(); ++i) {
            const json::Value &row = v->array[i];
            const std::string where =
                "manifest.failures[" + std::to_string(i) + "]";
            if (!row.isObject())
                return schemaFail(err, where + " is not an object");
            for (const char *key : {"cell", "class", "detail"}) {
                const json::Value *field = row.find(key);
                if (!field || !field->isString())
                    return schemaFail(err, where + "." + key +
                                               " missing or non-string");
            }
            const json::Value *attempts = row.find("attempts");
            if (!attempts || !attempts->isNumber())
                return schemaFail(err, where + ".attempts missing");
        }
    }
    if (const json::Value *v = manifest->find("cpiCategories")) {
        if (!v->isArray() || v->array.size() != kNumCpiCats)
            return schemaFail(err, "manifest.cpiCategories is not the "
                                   "compiled category list");
        for (std::size_t i = 0; i < kNumCpiCats; ++i)
            if (!v->array[i].isString() ||
                v->array[i].string != cpiCatName(CpiCat(i)))
                return schemaFail(err, "manifest.cpiCategories[" +
                                           std::to_string(i) +
                                           "] != '" +
                                           cpiCatName(CpiCat(i)) + "'");
    }

    const json::Value *config = doc.find("config");
    if (!config || !config->isObject())
        return schemaFail(err, "missing or invalid 'config'");
    for (const auto &[key, val] : config->object)
        if (!val.isNumber() && !val.isString())
            return schemaFail(err, "config." + key + " has invalid type");

    const json::Value *metrics = doc.find("metrics");
    if (!metrics || !metrics->isObject())
        return schemaFail(err, "missing or invalid 'metrics'");
    if (!allNumbers(*metrics, err, "metrics"))
        return false;

    const json::Value *kernels = doc.find("kernels");
    if (!kernels || !kernels->isArray())
        return schemaFail(err, "missing or invalid 'kernels'");
    for (std::size_t i = 0; i < kernels->array.size(); ++i) {
        const json::Value &row = kernels->array[i];
        const std::string where = "kernels[" + std::to_string(i) + "]";
        if (!row.isObject())
            return schemaFail(err, where + " is not an object");
        const json::Value *name = row.find("name");
        if (!name || !name->isString() || name->string.empty())
            return schemaFail(err, where + ".name missing");
        const json::Value *km = row.find("metrics");
        if (!km || !km->isObject())
            return schemaFail(err, where + ".metrics missing");
        if (!allNumbers(*km, err, where.c_str()))
            return false;
    }

    // The cpi block: optional, but when present its category set must
    // be exactly the compiled taxonomy (no unknown, no missing) and
    // every row's stack must sum to its cycles.
    if (const json::Value *cpi = doc.find("cpi")) {
        if (!cpi->isObject())
            return schemaFail(err, "'cpi' is not an object");
        const json::Value *version = cpi->find("taxonomyVersion");
        if (!version || !version->isNumber() ||
            version->number != double(kCpiTaxonomyVersion))
            return schemaFail(err, "cpi.taxonomyVersion missing or != "
                                   "compiled taxonomy version");
        const json::Value *cats = cpi->find("categories");
        if (!cats || !cats->isArray() ||
            cats->array.size() != kNumCpiCats)
            return schemaFail(err,
                              "cpi.categories is not the compiled list");
        for (std::size_t i = 0; i < kNumCpiCats; ++i)
            if (!cats->array[i].isString() ||
                cats->array[i].string != cpiCatName(CpiCat(i)))
                return schemaFail(err, "cpi.categories[" +
                                           std::to_string(i) + "] != '" +
                                           cpiCatName(CpiCat(i)) + "'");
        const json::Value *rows = cpi->find("rows");
        if (!rows || !rows->isArray())
            return schemaFail(err, "cpi.rows missing or not an array");
        for (std::size_t i = 0; i < rows->array.size(); ++i) {
            const json::Value &row = rows->array[i];
            const std::string where = "cpi.rows[" + std::to_string(i) +
                                      "]";
            if (!row.isObject())
                return schemaFail(err, where + " is not an object");
            const json::Value *run = row.find("run");
            if (!run || !run->isString())
                return schemaFail(err, where + ".run missing");
            const json::Value *kernel = row.find("kernel");
            if (!kernel || !kernel->isString() ||
                kernel->string.empty())
                return schemaFail(err, where + ".kernel missing");
            const json::Value *cycles = row.find("cycles");
            if (!cycles || !cycles->isNumber())
                return schemaFail(err, where + ".cycles missing");
            const json::Value *stack = row.find("stack");
            if (!stack || !stack->isObject())
                return schemaFail(err, where + ".stack missing");
            double sum = 0.0;
            std::size_t known = 0;
            for (const auto &[key, val] : stack->object) {
                if (cpiCatFromName(key) == CpiCat::NumCats)
                    return schemaFail(err, where + ".stack has unknown "
                                               "category '" + key + "'");
                if (!val.isNumber())
                    return schemaFail(err, where + ".stack." + key +
                                               " is not a number");
                sum += val.number;
                ++known;
            }
            if (known != kNumCpiCats)
                return schemaFail(err, where +
                                           ".stack is missing categories");
            if (std::fabs(sum - cycles->number) > 0.5)
                return schemaFail(err, where + ".stack does not sum to "
                                               ".cycles");
        }
    }
    return true;
}

} // namespace tartan::sim
