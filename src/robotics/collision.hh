/**
 * @file
 * Collision-detection kernels.
 *
 * Two flavours used by the RoWild robots:
 *  - footprint collision checking in (x, y, theta) space (CarriBot):
 *    the robot's rectangular footprint is swept along oriented lines
 *    over the occupancy grid — the second big consumer of oriented
 *    loads (paper §III-B, §IV);
 *  - cuboid-cuboid collision detection, CCCD (MoveBot): obstacles and
 *    robot links are bounded by cuboids and tested pairwise.
 */

#ifndef TARTAN_ROBOTICS_COLLISION_HH
#define TARTAN_ROBOTICS_COLLISION_HH

#include <cstdint>

#include "robotics/geometry.hh"
#include "robotics/grid.hh"
#include "robotics/oriented.hh"

namespace tartan::robotics {

namespace collision_pc {
inline constexpr PcId footprint = 110;
inline constexpr PcId cuboid = 111;
} // namespace collision_pc

/** Rectangular robot footprint. */
struct Footprint {
    double length = 8.0;  //!< cells along the heading
    double width = 4.0;   //!< cells across the heading
    std::uint32_t sweepLines = 3;  //!< oriented lines checked
};

/**
 * Check whether the footprint at @p pose intersects an obstacle by
 * casting `sweepLines` oriented traversals of length `length` through
 * the grid. Returns true on collision.
 */
bool footprintCollides(Mem &mem, const OccupancyGrid2D &grid,
                       const Pose2 &pose, const Footprint &fp,
                       OrientedEngine &engine);

/** Reference (uninstrumented, unbatched) footprint check for tests. */
bool footprintCollidesReference(const OccupancyGrid2D &grid,
                                const Pose2 &pose, const Footprint &fp);

/**
 * Cuboid-cuboid collision detection: tests every robot cuboid against
 * every obstacle cuboid with instrumented loads; returns true if any
 * pair overlaps. Iterates the obstacle range [first, last) so callers
 * can shard the work across threads (paper: CCCD runs on 8 threads).
 */
bool cuboidsCollide(Mem &mem, const Cuboid *robot, std::size_t robot_count,
                    const Cuboid *obstacles, std::size_t first,
                    std::size_t last);

} // namespace tartan::robotics

#endif // TARTAN_ROBOTICS_COLLISION_HH
