/**
 * @file
 * Fig. 7 reproduction: ray casting with trilinear interpolation under
 * Baseline, OVEC, an Intel-style ray-casting accelerator (zero-cost
 * interpolation + local voxel storage), and OVEC combined with the
 * accelerator — demonstrating the two designs are orthogonal. The four
 * configurations execute through a RunPool; each run builds its own
 * engine so no simulation state is shared between workers.
 */

#include "bench_util.hh"

#include <sstream>

#include "core/ovec.hh"
#include "robotics/geometry.hh"
#include "robotics/raycast.hh"
#include "sim/arena.hh"

using namespace tartan;
using namespace tartan::bench;
using robotics::Mem;

namespace {

/** One configuration's outcome: total cycles + per-kernel counters. */
struct RayRun {
    double cycles = 0.0;
    std::vector<sim::KernelCounters> kernels;
};

} // namespace

namespace tartan::bench {

/**
 * Exact RayRun codec so fig07's cells journal/cache like everyone
 * else's: cycles as a %a hexfloat, kernels through the shared
 * kernel-counter encoder.
 */
template <>
struct CellCodec<RayRun> {
    static constexpr bool available = true;
    static std::uint64_t
    schema()
    {
        // Kernel rows embed CPI stacks, so the taxonomy version is
        // folded in next to the layout tag.
        return sim::fnv1a64Mix(sim::fnv1a64("tartan-rayrun-codec-v1"),
                               sim::kCpiTaxonomyVersion);
    }
    static std::string
    encode(const RayRun &run)
    {
        std::ostringstream os;
        os << "{\"v\":\"1\",\"cyc\":\""
           << workloads::encodeDouble(run.cycles) << "\",\"k\":";
        workloads::encodeKernels(os, run.kernels);
        os << "}";
        return os.str();
    }
    static bool
    decode(const std::string &payload, RayRun &out,
           std::string *err = nullptr)
    {
        sim::json::Value doc;
        if (!sim::json::parse(payload, doc, err) || !doc.isObject())
            return false;
        const sim::json::Value *version = doc.find("v");
        const sim::json::Value *cycles = doc.find("cyc");
        const sim::json::Value *kernels = doc.find("k");
        if (!version || !version->isString() || version->string != "1" ||
            !cycles || !cycles->isString() ||
            !workloads::decodeDouble(cycles->string, out.cycles) ||
            !kernels || !workloads::decodeKernels(*kernels, out.kernels)) {
            if (err && err->empty())
                *err = "bad RayRun payload";
            return false;
        }
        return true;
    }
};

} // namespace tartan::bench

namespace {

/** Run the DeliBot-style interpolated ray-casting kernel. */
RayRun
rayCastingTime(bool use_ovec, bool accel)
{
    // Engines are stateful (batch statistics), so every run constructs
    // its own rather than sharing one across concurrent configs.
    robotics::ScalarOrientedEngine scalar;
    core::OvecEngine ovec;
    robotics::OrientedEngine &engine =
        use_ovec ? static_cast<robotics::OrientedEngine &>(ovec)
                 : scalar;

    sim::SysConfig sys_cfg;
    sys_cfg.lineBytes = 32;
    sim::System sys(sys_cfg);
    Mem mem(&sys.core());
    sim::Arena arena(16 << 20);
    robotics::OccupancyGrid2D grid(384, 384, arena);
    sim::Rng rng(42);
    grid.makeHeterogeneous(rng, 0.01, 0.04);

    robotics::RayConfig cfg;
    cfg.maxRange = 96;
    cfg.interpolate = true;
    cfg.interpOnAccelerator = accel;
    robotics::LocalVoxelStorage lvs;

    // MCL-style repeated scans: pose hypotheses re-scan the same map
    // neighbourhood, so the working set warms up as in DeliBot.
    for (int round = 0; round < 6; ++round) {
        for (int scan = 0; scan < 8; ++scan) {
            const double ox = 120 + (scan % 4) * 8 + round;
            const double oy = 150 + (scan / 4) * 8;
            for (int ray = 0; ray < 16; ++ray)
                castRay(mem, grid, ox, oy,
                        ray * 2.0 * robotics::kPi / 16.0, cfg, engine,
                        accel ? &lvs : nullptr);
        }
    }
    return RayRun{double(sys.core().cycles()), sys.core().kernels()};
}

} // namespace

int
main()
{
    BenchReporter rep("fig07_interp",
                      "norm. time: B 1.0, OVEC 0.74 (1.36x), Intel 0.52 "
                      "(1.92x), O+I 0.39 (2.56x; 1.33x over Intel "
                      "alone)");
    rep.config("grid", "384x384 occupancy, 32B lines");
    rep.config("configs", "B=scalar O=ovec I=intel-accel O+I=combined");

    RunPool pool;
    std::vector<Cell<RayRun>> jobs;
    const struct { const char *cfg; bool ovec; bool accel; } configs[] = {
        {"B", false, false},
        {"O", true, false},
        {"I", false, true},
        {"O+I", true, true}};
    for (const auto &c : configs) {
        Cell<RayRun> one;
        one.label = c.cfg;
        // Content address: every knob rayCastingTime() bakes into the
        // run, so a kernel change shows up as a config change only if
        // it is reflected here — the codec schema covers the rest.
        one.configHash = sim::fnv1a64(
            std::string("fig07;grid=384x384;lines=32;rays=16;"
                        "rounds=6;scans=8;ovec=") +
            (c.ovec ? "1" : "0") + ";accel=" + (c.accel ? "1" : "0"));
        one.seed = 42;
        one.fn = [ovec = c.ovec, accel = c.accel]() {
            return rayCastingTime(ovec, accel);
        };
        jobs.push_back(std::move(one));
    }
    const std::vector<RayRun> runs = runAll(rep, pool, std::move(jobs));
    const double b = runs[0].cycles, o = runs[1].cycles,
                 i = runs[2].cycles, oi = runs[3].cycles;

    std::printf("%-4s %14s %10s %9s\n", "cfg", "cycles", "norm", "speedup");
    std::printf("%-4s %14.0f %10.3f %8.2fx\n", "B", b, 1.0, 1.0);
    std::printf("%-4s %14.0f %10.3f %8.2fx\n", "O", o, o / b, b / o);
    std::printf("%-4s %14.0f %10.3f %8.2fx\n", "I", i, i / b, b / i);
    std::printf("%-4s %14.0f %10.3f %8.2fx\n", "O+I", oi, oi / b, b / oi);
    std::printf("\nOrthogonality: O+I over I alone = %.2fx "
                "(paper: 1.33x)\n", i / oi);

    for (std::size_t c = 0; c < 4; ++c) {
        rep.kernelMetric(configs[c].cfg, "cycles", runs[c].cycles);
        rep.kernelMetric(configs[c].cfg, "normTime", runs[c].cycles / b);
        rep.kernelMetric(configs[c].cfg, "speedup", b / runs[c].cycles);
        reportCpi(rep, configs[c].cfg, runs[c].kernels);
    }
    rep.metric("orthogonalityOiOverI", i / oi);
    rep.note("paper: O+I over I alone = 1.33x");
    return campaignExit(rep);
}
