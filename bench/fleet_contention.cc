/**
 * @file
 * Fleet contention study: N robots sharing one coherent multi-core
 * machine. Each roster slot is captured once (capture-once /
 * replay-many), then the N op streams replay min-cycle-first
 * interleaved through a machine with N private L1/L2 paths, a shared
 * sliced L3 behind a crossbar, MESI snooping between the private
 * hierarchies, and a banked DRAM controller. For every fleet size the
 * driver reports per-core wall cycles, the interference factor versus
 * the same robot running the machine alone, per-core CPI stacks
 * (including the coherence category), and the shared fabric's
 * crossbar/bank/coherence counters — once with the L3 fully shared and
 * once with FCP partitioning the L3 (paper §VIII-D).
 *
 * TARTAN_CORES pins the sweep to one fleet size (the CI smoke runs
 * N=4); default sweeps N in {1, 2, 4, 8}. TARTAN_XBAR_HOP,
 * TARTAN_DRAM_BANKS and TARTAN_COHERENCE_LAT override the uncore
 * knobs.
 */

#include "bench_util.hh"

using namespace tartan::bench;
using namespace tartan::workloads;

namespace {

using tartan::sim::CaptureTrace;
using tartan::sim::Cycles;
using tartan::sim::RunEnv;

/** The machine for one partitioning mode (L3 shared vs FCP-sliced). */
MachineSpec
fleetSpec(bool fcp_at_l3)
{
    MachineSpec spec = MachineSpec::baseline();
    if (fcp_at_l3) {
        spec.sys.fcpEnabled = true;
        spec.sys.fcpAtL3 = true;
    }
    const RunEnv &env = RunEnv::get();
    if (env.xbarHop)
        spec.sys.uncore.xbarHopLatency = env.xbarHop;
    if (env.dramBanks)
        spec.sys.uncore.dramBanks = env.dramBanks;
    if (env.coherenceLat)
        spec.sys.uncore.coherenceLatency = env.coherenceLat;
    return spec;
}

/** One fleet configuration's outcome: per-core results + fabric. */
struct FleetOutcome {
    std::vector<RunResult> cores;
    FleetUncoreSnapshot uncore;
};

} // namespace

int
main()
{
    BenchReporter rep("fleet_contention",
                      "interference grows with fleet size as robots "
                      "fight for L3 capacity, crossbar slices and DRAM "
                      "banks; FCP partitioning the L3 caps the worst "
                      "per-robot slowdown; coherence stalls stay small "
                      "(disjoint address spaces, no true sharing)");

    const RunEnv &env = RunEnv::get();
    std::vector<unsigned> fleet_sizes;
    if (env.cores)
        fleet_sizes.push_back(env.cores);
    else
        fleet_sizes = {1, 2, 4, 8};
    {
        std::string sizes;
        for (unsigned n : fleet_sizes)
            sizes += (sizes.empty() ? "" : " ") + std::to_string(n);
        rep.config("fleetSizes", sizes);
    }
    rep.config("modes", "shared fcp");
    rep.config("tier", "optimized");
    const MachineSpec knob_echo = fleetSpec(false);
    rep.config("xbarHopLatency",
               std::to_string(knob_echo.sys.uncore.xbarHopLatency));
    rep.config("dramBanks",
               std::to_string(knob_echo.sys.uncore.dramBanks));
    rep.config("coherenceLatency",
               std::to_string(knob_echo.sys.uncore.coherenceLatency));

    const auto &suite = robotSuite();
    const unsigned max_n =
        *std::max_element(fleet_sizes.begin(), fleet_sizes.end());
    const std::size_t roster = std::min<std::size_t>(max_n, suite.size());

    // Capture each distinct roster robot once; every solo reference and
    // every fleet slot replays the same op stream.
    std::vector<std::unique_ptr<CaptureSource>> sources;
    std::vector<std::shared_ptr<const CaptureTrace>> traces;
    for (std::size_t i = 0; i < roster; ++i) {
        sources.push_back(std::make_unique<CaptureSource>(
            suite[i].name, suite[i].run, MachineSpec::baseline(),
            options(SoftwareTier::Optimized)));
        traces.push_back(sources.back()->acquire());
    }

    const char *mode_names[] = {"shared", "fcp"};
    RunPool pool;

    // Solo references: each roster robot alone on the single-core
    // machine of each mode (simCores=1 -> no uncore, historical path).
    std::vector<std::function<RunResult()>> solo_jobs;
    for (int mode = 0; mode < 2; ++mode)
        for (std::size_t i = 0; i < roster; ++i) {
            const CaptureTrace *trace = traces[i].get();
            const MachineSpec spec = fleetSpec(mode == 1);
            solo_jobs.push_back([trace, spec]() {
                return replayTrace(*trace, spec,
                                   options(SoftwareTier::Optimized));
            });
        }
    const std::vector<RunResult> solos =
        runAll(pool, std::move(solo_jobs));
    const auto solo_wall = [&](int mode, std::size_t slot) {
        return double(solos[mode * roster + slot % roster].wallCycles);
    };

    // Fleet configurations: every (mode, N) pair is one job. Slot i of
    // an N-robot fleet runs roster robot i % roster on core i.
    std::vector<std::function<FleetOutcome()>> fleet_jobs;
    for (int mode = 0; mode < 2; ++mode)
        for (unsigned n : fleet_sizes) {
            std::vector<const CaptureTrace *> fleet;
            for (unsigned i = 0; i < n; ++i)
                fleet.push_back(traces[i % roster].get());
            const MachineSpec spec = fleetSpec(mode == 1);
            fleet_jobs.push_back([fleet, spec]() {
                FleetOutcome out;
                out.cores =
                    replayFleet(fleet, spec,
                                options(SoftwareTier::Optimized),
                                &out.uncore);
                return out;
            });
        }
    const std::vector<FleetOutcome> outcomes =
        runAll(pool, std::move(fleet_jobs));

    std::printf("%-6s %-7s %-14s %12s %12s %8s %10s\n", "mode", "fleet",
                "core:robot", "wallCycles", "soloCycles", "interf",
                "cohCycles");
    std::size_t out_idx = 0;
    for (int mode = 0; mode < 2; ++mode) {
        std::vector<double> worst_interf;
        for (unsigned n : fleet_sizes) {
            const FleetOutcome &out = outcomes[out_idx++];
            const std::string tag =
                std::string(mode_names[mode]) + "/N" + std::to_string(n);
            double worst = 0.0;
            std::vector<double> interfs;
            for (std::size_t c = 0; c < out.cores.size(); ++c) {
                const RunResult &res = out.cores[c];
                const double solo = solo_wall(mode, c);
                const double interf =
                    solo > 0 ? double(res.wallCycles) / solo : 1.0;
                worst = std::max(worst, interf);
                interfs.push_back(interf);
                Cycles coh = 0;
                for (const auto &k : res.kernels)
                    coh += k.cpi[tartan::sim::CpiCat::Coherence];
                std::printf("%-6s %-7u c%zu:%-11s %12llu %12.0f %8.3f "
                            "%10llu\n",
                            mode_names[mode], n, c, res.robot.c_str(),
                            static_cast<unsigned long long>(
                                res.wallCycles),
                            solo, interf,
                            static_cast<unsigned long long>(coh));
                const std::string row = tag + "/c" + std::to_string(c) +
                                        ":" + res.robot;
                reportRun(rep, row, res);
                rep.kernelMetric(row, "interference", interf);
                rep.kernelMetric(row, "coherenceCycles", double(coh));
                reportCpi(rep, row, res);
            }
            const tartan::sim::CoherenceStats &cs = out.uncore.coherence;
            const tartan::sim::XbarStats &xs = out.uncore.xbar;
            const tartan::sim::MemCtrlStats &ms = out.uncore.memctrl;
            std::printf("%-6s %-7u %-14s snoops %llu inval %llu fwd "
                        "%llu xbarHops %llu rowHit %llu/%llu "
                        "bankConfl %llu\n",
                        mode_names[mode], n, "fabric",
                        static_cast<unsigned long long>(cs.snoops),
                        static_cast<unsigned long long>(cs.invalidations),
                        static_cast<unsigned long long>(cs.dirtyForwards),
                        static_cast<unsigned long long>(xs.hops),
                        static_cast<unsigned long long>(ms.rowHits),
                        static_cast<unsigned long long>(ms.rowHits +
                                                        ms.rowMisses),
                        static_cast<unsigned long long>(ms.bankConflicts));
            const std::string frow = tag + "/fabric";
            rep.kernelMetric(frow, "snoops", double(cs.snoops));
            rep.kernelMetric(frow, "invalidations",
                             double(cs.invalidations));
            rep.kernelMetric(frow, "downgrades", double(cs.downgrades));
            rep.kernelMetric(frow, "dirtyForwards",
                             double(cs.dirtyForwards));
            rep.kernelMetric(frow, "upgrades", double(cs.upgrades));
            rep.kernelMetric(frow, "xbarTraversals",
                             double(xs.traversals));
            rep.kernelMetric(frow, "xbarHops", double(xs.hops));
            rep.kernelMetric(frow, "dramReads", double(ms.reads));
            rep.kernelMetric(frow, "dramWrites", double(ms.writes));
            rep.kernelMetric(frow, "rowHits", double(ms.rowHits));
            rep.kernelMetric(frow, "rowMisses", double(ms.rowMisses));
            rep.kernelMetric(frow, "bankConflicts",
                             double(ms.bankConflicts));
            rep.kernelMetric(frow, "conflictCycles",
                             double(ms.conflictCycles));
            rep.kernelMetric(frow, "gmeanInterference",
                             geomean(interfs));
            rep.kernelMetric(frow, "worstInterference", worst);
            worst_interf.push_back(worst);
        }
        rep.metric(std::string("worstInterference/") + mode_names[mode],
                   *std::max_element(worst_interf.begin(),
                                     worst_interf.end()));
    }

    rep.note("interference = fleet wall cycles / solo wall cycles per "
             "core; fcp mode partitions the shared L3 with FCP");
    reportCaptureStats(rep);
    return campaignExit(rep);
}
