/**
 * @file
 * Chaos campaign: drive every robot through a sweep of deterministic
 * fault classes (sensor corruption, surrogate glitches, memory-timing
 * chaos) and report how gracefully each one degrades. A robot
 * "survives" a class when its final metrics stay finite and its
 * recovery counters show the degradation machinery actually engaged.
 *
 * Usage:
 *   chaos_campaign [robot-name ...]      # default: all six robots
 *   chaos_campaign --cells [robot ...]   # + cell-crash/cell-hang cells
 *   TARTAN_FAULTS=<spec> chaos_campaign  # single user-supplied plan
 *
 * --cells exercises the campaign-resilience layer itself: two extra
 * cells (first selected robot only) run under `cell:crash=1@400` and
 * `cell:hang=1@400`, which deterministically kill / wedge the cell on
 * its 401st hooked memory access. They are expected to exhaust their
 * retries and be quarantined — excluded from the survival gate, they
 * verify that a dying cell ends up as a manifest failure row instead
 * of aborting the sweep (exit 3 per the campaign exit policy). The
 * hang cell requires a TARTAN_TIMEOUT, since only the watchdog can
 * reclaim a wedged cell.
 *
 * The campaign is deterministic: plans are seeded (default seed 42)
 * and each robot derives its own fault stream from (plan, robot name),
 * so two runs with the same plan produce identical BENCH rows. All
 * (robot, class) cells are independent — each owns its injector and
 * trace session — and execute through a RunPool; the report is
 * formatted after the gather, so TARTAN_JOBS never changes the output.
 */

#include "bench_util.hh"

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/fault.hh"
#include "sim/logging.hh"

using namespace tartan::bench;
using namespace tartan::workloads;
using tartan::sim::FaultPlan;

namespace {

struct FaultClass {
    const char *name;
    const char *spec;
};

/** The default sweep: one class per fault mechanism. */
const FaultClass kClasses[] = {
    {"sensor-drop", "sensor:drop=0.2"},
    {"sensor-spike", "sensor:spike=0.1@20"},
    {"sensor-nan", "sensor:nan=0.1"},
    {"sensor-noise", "sensor:noise=0.5@0.05"},
    {"surrogate-garbage", "surrogate:garbage=0.3"},
    {"mem-chaos", "mem:spike=0.02@300,blackout=0.01@500"},
};

/**
 * The robot's primary quality metric, compared against the clean run
 * to quantify degradation.
 */
const char *
primaryMetric(const std::string &robot)
{
    if (robot == "DeliBot")
        return "locErrorCells";
    if (robot == "PatrolBot")
        return "ekfError";
    if (robot == "MoveBot")
        return "pathLength";
    if (robot == "HomeBot")
        return "mapPoints";
    return "planCost"; // FlyBot, CarriBot
}

double
metricOr(const RunResult &res, const std::string &key, double fallback)
{
    const auto it = res.metrics.find(key);
    return it == res.metrics.end() ? fallback : it->second;
}

bool
allMetricsFinite(const RunResult &res)
{
    for (const auto &[key, val] : res.metrics)
        if (!std::isfinite(val))
            return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReporter rep("chaos_campaign",
                      "graceful degradation: every robot survives >= 3 "
                      "fault classes with finite metrics and engaged "
                      "recovery paths");

    // Single-plan mode: a user-supplied TARTAN_FAULTS spec replaces the
    // default class sweep.
    std::vector<FaultClass> classes;
    std::string env_spec;
    if (auto env_plan = FaultPlan::fromEnv()) {
        env_spec = env_plan->spec();
        classes.push_back(FaultClass{"env", env_spec.c_str()});
    } else {
        classes.assign(std::begin(kClasses), std::end(kClasses));
    }
    const std::size_t required = std::min<std::size_t>(3, classes.size());

    rep.config("machine", "tartan");
    rep.config("tier", "approximate");
    rep.config("scale", 0.5);
    rep.config("seed", 42.0);
    rep.config("requiredSurvivedClasses", double(required));
    for (const FaultClass &fc : classes)
        rep.config(std::string("class.") + fc.name, fc.spec);

    // Optional positional robot filter; --cells turns on the
    // self-test cells for the resilience layer.
    std::vector<std::string> filter;
    bool cells_mode = false;
    for (int a = 1; a < argc; ++a) {
        if (std::string(argv[a]) == "--cells")
            cells_mode = true;
        else
            filter.emplace_back(argv[a]);
    }
    const FaultClass kCellClasses[] = {
        {"cell-crash", "cell:crash=1@400"},
        {"cell-hang", "cell:hang=1@400"},
    };
    if (cells_mode && !(tartan::sim::RunEnv::get().timeoutSec > 0.0))
        TARTAN_FATAL("chaos: --cells includes a hang cell; set "
                     "TARTAN_TIMEOUT so the watchdog can reclaim it");
    auto selected = [&](const std::string &name) {
        if (filter.empty())
            return true;
        for (const std::string &f : filter)
            if (f == name)
                return true;
        return false;
    };

    std::printf("%-10s %-18s %10s %10s %12s %8s\n", "robot", "class",
                "injected", "recovered", "degradation", "status");

    const MachineSpec spec = MachineSpec::tartan();

    // Submit the whole campaign — per selected robot, the clean
    // baseline followed by one run per fault class. Trace sessions are
    // created here on the main thread (so manifest order is
    // deterministic); the fault injector is created *inside* the
    // closure, so a watchdog retry restarts the fault stream from the
    // beginning instead of resuming it mid-way — the re-attempt is the
    // byte-identical re-execution the resilience layer assumes.
    const auto fault_cell = [&rep, &spec](const std::string &label,
                                          RobotFn run, std::string robot,
                                          std::string fault_spec) {
        Cell<RunResult> c;
        c.label = label;
        // The fault spec is invisible to the machine/options hash, so
        // it rides in as salt: two classes over the same machine must
        // never share a journal row or cache entry.
        c.configHash = cellConfigHash(
            label, spec, options(SoftwareTier::Approximate, 0.5),
            fault_spec);
        c.seed = 42;
        std::shared_ptr<tartan::sim::TraceSession> trace =
            rep.makeTrace(label);
        c.fn = [run, spec, robot = std::move(robot),
                fault_spec = std::move(fault_spec), trace]() {
            FaultPlan plan;
            std::string perr;
            if (!FaultPlan::parse(fault_spec, plan, &perr))
                TARTAN_FATAL("chaos: bad spec '%s': %s",
                             fault_spec.c_str(), perr.c_str());
            std::shared_ptr<tartan::sim::FaultInjector> inj =
                plan.makeInjector(robot);
            WorkloadOptions opt = options(SoftwareTier::Approximate, 0.5);
            opt.faults = inj.get();
            opt.trace = trace.get();
            RunResult res = run(spec, opt);
            if (trace)
                trace->finalize();
            return res;
        };
        return c;
    };

    RunPool pool;
    std::vector<Cell<RunResult>> jobs;
    bool any_selected = false;
    std::string first_robot;
    RobotFn first_run = nullptr;
    for (const auto &robot : robotSuite()) {
        const std::string name(robot.name);
        if (!selected(name))
            continue;
        any_selected = true;
        if (first_robot.empty()) {
            first_robot = name;
            first_run = robot.run;
        }

        // Clean baseline (no injector: the null-hook path).
        jobs.push_back(cell(rep, name + "_clean", robot.run, spec,
                            options(SoftwareTier::Approximate, 0.5)));

        for (const FaultClass &fc : classes) {
            FaultPlan plan;
            std::string perr;
            if (!FaultPlan::parse(fc.spec, plan, &perr))
                TARTAN_FATAL("chaos: bad spec '%s': %s", fc.spec,
                             perr.c_str());
            jobs.push_back(fault_cell(name + "_" + fc.name, robot.run,
                                      name, fc.spec));
        }
    }
    if (!any_selected)
        TARTAN_FATAL("chaos: no robot matches the filter");

    // The resilience self-test cells ride at the tail so the per-robot
    // result indexing above them is untouched.
    std::size_t chaos_cells = 0;
    if (cells_mode) {
        for (const FaultClass &fc : kCellClasses) {
            jobs.push_back(fault_cell(first_robot + "_" + fc.name,
                                      first_run, first_robot, fc.spec));
            ++chaos_cells;
        }
    }
    const std::vector<RunResult> results =
        runAll(rep, pool, std::move(jobs));

    std::size_t min_survived = classes.size();
    std::size_t r = 0;
    for (const auto &robot : robotSuite()) {
        const std::string name(robot.name);
        if (!selected(name))
            continue;

        const RunResult &clean = results[r++];
        const std::string quality_key = primaryMetric(name);
        const double clean_q = metricOr(clean, quality_key, 0.0);
        rep.kernelMetric(name, "cleanQuality", clean_q);
        reportRun(rep, name + "/clean", clean);
        reportCpi(rep, name + "/clean", clean);

        std::size_t survived = 0;
        for (const FaultClass &fc : classes) {
            const RunResult &res = results[r++];
            const double injected =
                metricOr(res, "faultsInjected", 0.0);
            const double recovered = metricOr(res, "recoveries", 0.0);
            const double faulty_q = metricOr(res, quality_key, 0.0);
            const double degradation =
                std::isfinite(faulty_q)
                    ? std::abs(faulty_q - clean_q) /
                          std::max(std::abs(clean_q), 1e-9)
                    : HUGE_VAL;
            const bool finite = allMetricsFinite(res);
            const bool ok = finite && recovered > 0.0;
            survived += ok ? 1 : 0;

            const std::string row = name + "/" + fc.name;
            rep.kernelMetric(row, "faultsInjected", injected);
            rep.kernelMetric(row, "recoveries", recovered);
            rep.kernelMetric(row, "qualityDegradation",
                             std::isfinite(degradation) ? degradation
                                                        : -1.0);
            rep.kernelMetric(row, "wallCycles", double(res.wallCycles));
            rep.kernelMetric(row, "survived", ok ? 1.0 : 0.0);
            // Fault-class runs carry a 'fault' CPI category: the stack
            // shows where injected latency spikes landed.
            reportCpi(rep, row, res);

            std::printf("%-10s %-18s %10.0f %10.0f %11.1f%% %8s\n",
                        name.c_str(), fc.name, injected, recovered,
                        100.0 * degradation,
                        !finite ? "DIED" : (ok ? "ok" : "benign"));
        }
        rep.kernelMetric(name, "survivedClasses", double(survived));
        min_survived = std::min(min_survived, survived);
        std::printf("%-10s survived %zu/%zu classes\n\n", name.c_str(),
                    survived, classes.size());
    }

    // The resilience self-test cells: quarantined cells come back as
    // default placeholders (wallCycles == 0). They are excluded from
    // the survival gate; their verdict is the exit policy below.
    if (cells_mode) {
        std::printf("-- resilience self-test cells (expected to be "
                    "quarantined) --\n");
        for (std::size_t c = 0; c < chaos_cells; ++c) {
            const FaultClass &fc = kCellClasses[c];
            const RunResult &res = results[r++];
            const bool quarantined = res.wallCycles == 0;
            std::printf("%-10s %-18s %30s\n", first_robot.c_str(),
                        fc.name,
                        quarantined ? "quarantined" : "UNEXPECTEDLY OK");
            rep.kernelMetric(first_robot + "/" + fc.name, "quarantined",
                             quarantined ? 1.0 : 0.0);
        }
    }

    rep.metric("minSurvivedClasses", double(min_survived));
    rep.note("survived = all final metrics finite AND recoveries > 0; "
             "'benign' = finite metrics but no recovery path engaged "
             "(fault class does not reach this robot)");

    if (min_survived < required) {
        std::printf("FAIL: a robot survived only %zu/%zu classes "
                    "(need >= %zu)\n",
                    min_survived, classes.size(), required);
        return 1;
    }
    std::printf("PASS: every robot survived >= %zu fault classes\n",
                required);
    // Quarantined cells (the --cells self-test, or a genuinely dying
    // robot) surface through the campaign exit policy: the manifest is
    // complete, the exit code says it contains placeholders.
    return campaignExit(rep);
}
