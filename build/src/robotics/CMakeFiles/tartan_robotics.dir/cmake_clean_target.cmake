file(REMOVE_RECURSE
  "libtartan_robotics.a"
)
