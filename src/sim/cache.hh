/**
 * @file
 * Set-associative cache model with pluggable indexing, LRU replacement,
 * FCP replacement-metadata manipulation, prefetched-line tracking,
 * unnecessary-data-movement (UDM) accounting, and eviction listeners.
 */

#ifndef TARTAN_SIM_CACHE_HH
#define TARTAN_SIM_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/indexing.hh"
#include "sim/types.hh"

namespace tartan::sim {

class StatsGroup;

/**
 * FCP replacement-metadata manipulation (paper §VII-B).
 *
 * On a fill of line X, every resident line in the set that shares X's
 * region has its LRU recency passed through m(x) (clamped to the maximum
 * recency), accelerating its eviction and preventing any single region
 * from monopolising the set.
 */
struct FcpReplacement {
    /** Manipulation function family evaluated in the paper (Fig. 11). */
    enum class Func { XPlus1, TwoX, XSquared };

    std::uint32_t regionBytes = 1024;
    Func func = Func::XSquared;

    /** Apply m(x) to a recency value. */
    std::uint32_t
    apply(std::uint32_t x) const
    {
        switch (func) {
          case Func::XPlus1:
            return x + 1;
          case Func::TwoX:
            return 2 * x;
          case Func::XSquared:
            return x * x;
        }
        return x;
    }
};

/** Static configuration of one cache. */
struct CacheParams {
    std::string name = "cache";
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t assoc = 8;
    std::uint32_t lineBytes = 64;
    Cycles latency = 4;
    /** Track per-line touched bytes for UDM accounting (L1 only). */
    bool trackUdm = false;
    /** Optional non-standard indexing (owned by the caller/system). */
    const IndexingPolicy *indexing = nullptr;
    /** Optional FCP replacement manipulation. */
    const FcpReplacement *fcp = nullptr;
};

/** Aggregate statistics of a cache. */
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;
    std::uint64_t prefetchFills = 0;
    std::uint64_t prefetchHits = 0;     //!< demand hits on prefetched lines
    std::uint64_t prefetchUnused = 0;   //!< prefetched lines evicted unused
    std::uint64_t udmFetchedBytes = 0;  //!< bytes brought in (UDM tracking)
    std::uint64_t udmUsedBytes = 0;     //!< bytes actually referenced

    std::uint64_t accesses() const { return hits + misses; }
    double
    missRatio() const
    {
        const std::uint64_t a = accesses();
        return a ? static_cast<double>(misses) / static_cast<double>(a) : 0.0;
    }
};

/**
 * One level of the cache hierarchy.
 *
 * The cache stores full line numbers as tags, so any one-to-one indexing
 * permutation is trivially correct. Fill/eviction is driven externally by
 * the MemorySystem, which models the hierarchy walk.
 */
class Cache
{
  public:
    /** Result of a demand lookup. */
    struct LookupResult {
        bool hit = false;
        bool prefetched = false;  //!< line had been prefetched and unused
        Cycles latePenalty = 0;   //!< residual latency of a late prefetch
    };

    /** Describes the line displaced by a fill. */
    struct Eviction {
        bool valid = false;
        Addr lineAddr = 0;
        bool dirty = false;
    };

    /** Callback invoked on every eviction of a valid line. */
    using EvictionListener = std::function<void(Addr line_addr)>;

    explicit Cache(const CacheParams &params);

    /**
     * Demand access. On a hit the line is promoted to MRU and (for
     * stores) marked dirty; the caller handles the miss path.
     *
     * @param addr byte address
     * @param type load or store
     * @param size access footprint in bytes (UDM accounting)
     * @param now current core cycle (for prefetch-timeliness accounting)
     */
    LookupResult access(Addr addr, AccessType type, std::uint32_t size,
                        Cycles now = 0);

    /** Check residency without perturbing any state. */
    bool probe(Addr addr) const;

    /**
     * Install a line (after fetching it from below). Returns the victim.
     *
     * @param prefetch the fill was triggered by a prefetcher
     * @param dirty install in modified state
     * @param ready_at cycle at which a prefetched line becomes usable
     */
    Eviction fill(Addr addr, bool prefetch = false, bool dirty = false,
                  Cycles ready_at = 0);

    /** Invalidate a line if present (used by write-through stores). */
    void invalidate(Addr addr);

    /** Number of resident dirty lines (end-of-run drain accounting). */
    std::uint64_t dirtyLines() const;

    /** Number of resident prefetched lines not yet demanded. */
    std::uint64_t prefetchedLines() const;

    /** Register this cache's counters (by reference) into @p group. */
    void registerStats(StatsGroup &group) const;

    /** Register an eviction listener (e.g. ANL region termination). */
    void setEvictionListener(EvictionListener listener);

    const CacheParams &params() const { return config; }
    const CacheStats &stats() const { return statsData; }
    CacheStats &stats() { return statsData; }
    std::uint32_t numSets() const { return setCount; }

    /** Line-aligned address of @p addr. */
    Addr
    lineAddr(Addr addr) const
    {
        return addr & ~static_cast<Addr>(config.lineBytes - 1);
    }

  private:
    struct Line {
        std::uint64_t lineNumber = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
        std::uint32_t recency = 0;  //!< 0 = MRU, grows towards eviction
        std::uint64_t touched = 0;  //!< 4-byte-granule touched bitmap
        Cycles readyAt = 0;         //!< when a prefetched line arrives
    };

    std::uint64_t setIndex(std::uint64_t line_number) const;
    /** Upper bound on FCP-manipulated recency values. */
    std::uint32_t manipCeiling() const { return 4 * maxRecency + 1; }
    void promote(std::vector<Line> &set, std::uint32_t way);
    std::uint32_t victimWay(const std::vector<Line> &set) const;
    void evictLine(Line &line);
    void touch(Line &line, Addr addr, std::uint32_t size);
    std::uint64_t regionOf(std::uint64_t line_number) const;

    CacheParams config;
    StandardIndexing defaultIndexing;
    const IndexingPolicy *indexing;
    std::uint32_t setCount;
    std::uint32_t lineBits;
    std::uint32_t maxRecency;
    std::vector<std::vector<Line>> sets;
    CacheStats statsData;
    EvictionListener evictionListener;
};

} // namespace tartan::sim

#endif // TARTAN_SIM_CACHE_HH
