/**
 * @file
 * Incrementally-built k-d tree NNS backend.
 *
 * Mirrors the OMPL-style structures the paper critiques (§VI): node
 * records are heap-scattered, traversal is pointer chasing (dependent
 * misses, full stalls), and high dimensionality erodes pruning.
 */

#ifndef TARTAN_ROBOTICS_KDTREE_HH
#define TARTAN_ROBOTICS_KDTREE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "robotics/nns.hh"
#include "sim/arena.hh"

namespace tartan::robotics {

/** Unbalanced incremental k-d tree. */
class KdTreeNns : public NnsBackend
{
  public:
    /**
     * @param arena optional backing store for node records. Bind one
     *        when the run must be address-deterministic: nodes then
     *        come from the arena (one cache line each, preserving the
     *        pointer-chase character) instead of individual heap
     *        allocations whose placement depends on heap history.
     */
    KdTreeNns(const float *store, std::uint32_t dim,
              std::uint32_t stride = 0,
              tartan::sim::Arena *arena = nullptr);
    ~KdTreeNns() override;

    void insert(Mem &mem, std::uint32_t id) override;
    std::int32_t nearest(Mem &mem, const float *query) override;
    void radius(Mem &mem, const float *query, float eps,
                std::vector<std::uint32_t> &out) override;
    const char *name() const override { return "kdtree"; }

    std::size_t size() const { return nodes.size(); }

  private:
    struct Node {
        std::uint32_t id = 0;
        std::uint32_t splitDim = 0;
        std::int32_t left = -1;
        std::int32_t right = -1;
    };

    void nearestRec(Mem &mem, std::int32_t node, const float *query,
                    std::int32_t &best, float &best_d);
    void radiusRec(Mem &mem, std::int32_t node, const float *query,
                   float eps_sq, std::vector<std::uint32_t> &out);

    Node *allocNode();

    /** Nodes are allocated individually to model heap scatter. */
    std::vector<Node *> nodes;
    tartan::sim::Arena *arenaPtr;
    std::int32_t root = -1;
};

} // namespace tartan::robotics

#endif // TARTAN_ROBOTICS_KDTREE_HH
