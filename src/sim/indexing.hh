/**
 * @file
 * Cache set-indexing policies.
 *
 * The standard policy uses the low-order set bits of the line address.
 * Tartan's FCP (paper §VII-B, Fig. 5.b) changes the indexing so that some
 * cachelines of the same region map to the same set, which gives the
 * replacement-metadata manipulation traction to softly partition the
 * cache among regions.
 *
 * We realise this as a permutation of the line number: the high-order l
 * bits of the in-region offset are displaced out of the index window
 * (folded into the tag via XOR — one-to-one, so the tag width is
 * unchanged, paper footnote 4) and region bits slide down in their place.
 * Consequently a region of 2^O lines maps onto 2^(O-l) sets with 2^l
 * same-region lines per set. The low-order offset bits are excluded from
 * the fold and kept verbatim in the index, so consecutive (prefetched)
 * lines still spread across sets and do not create hotspots.
 */

#ifndef TARTAN_SIM_INDEXING_HH
#define TARTAN_SIM_INDEXING_HH

#include <cstdint>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace tartan::sim {

/** Maps a line-aligned address to a cache set. */
class IndexingPolicy
{
  public:
    virtual ~IndexingPolicy() = default;

    /**
     * @param line_number address >> lineBits
     * @param num_sets power-of-two set count
     * @return set index in [0, num_sets)
     */
    virtual std::uint64_t index(std::uint64_t line_number,
                                std::uint64_t num_sets) const = 0;
};

/** Conventional modulo-set indexing on the low-order bits. */
class StandardIndexing : public IndexingPolicy
{
  public:
    std::uint64_t
    index(std::uint64_t line_number, std::uint64_t num_sets) const override
    {
        return line_number & (num_sets - 1);
    }
};

/**
 * FCP indexing: fold the high l offset bits of each region out of the
 * index so that 2^l lines of a region share each set they map to.
 */
class FcpIndexing : public IndexingPolicy
{
  public:
    /**
     * @param region_bytes region size in bytes (power of two)
     * @param line_bytes cacheline size in bytes
     * @param l number of high offset bits folded out of the index
     */
    FcpIndexing(std::uint32_t region_bytes, std::uint32_t line_bytes,
                std::uint32_t l)
        : foldBits(l)
    {
        TARTAN_ASSERT(region_bytes % line_bytes == 0,
                      "region must be a multiple of the line size");
        offsetBits = log2u(region_bytes / line_bytes);
        TARTAN_ASSERT(foldBits <= offsetBits, "l exceeds offset field");
    }

    std::uint64_t
    index(std::uint64_t line_number, std::uint64_t num_sets) const override
    {
        const std::uint32_t keep = offsetBits - foldBits;
        const std::uint64_t offset_low = line_number & ((1ull << keep) - 1);
        const std::uint64_t region = line_number >> offsetBits;
        // Region bits slide down into the positions vacated by the folded
        // high offset bits; the folded bits live in the tag (the cache
        // tags with the full line number, so no information is lost).
        const std::uint64_t mixed = offset_low | (region << keep);
        return mixed & (num_sets - 1);
    }

    /** Region number of a line (used by the replacement manipulation). */
    std::uint64_t
    regionOf(std::uint64_t line_number) const
    {
        return line_number >> offsetBits;
    }

  private:
    std::uint32_t foldBits;
    std::uint32_t offsetBits;
};

} // namespace tartan::sim

#endif // TARTAN_SIM_INDEXING_HH
