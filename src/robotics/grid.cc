/**
 * @file
 * Occupancy-grid construction and synthetic environment generators.
 */

#include "robotics/grid.hh"

#include <algorithm>

namespace tartan::robotics {

OccupancyGrid2D::OccupancyGrid2D(std::uint32_t width, std::uint32_t height,
                                 tartan::sim::Arena &arena)
    : gridW(width), gridH(height),
      cellData(arena.alloc<float>(static_cast<std::size_t>(width) * height))
{
    clearWithBorder();
}

void
OccupancyGrid2D::clearWithBorder()
{
    std::fill(cellData, cellData + cells(), 0.0f);
    for (std::uint32_t x = 0; x < gridW; ++x) {
        at(x, 0) = 1.0f;
        at(x, gridH - 1) = 1.0f;
    }
    for (std::uint32_t y = 0; y < gridH; ++y) {
        at(0, y) = 1.0f;
        at(gridW - 1, y) = 1.0f;
    }
}

void
OccupancyGrid2D::addRect(std::uint32_t x0, std::uint32_t y0,
                         std::uint32_t x1, std::uint32_t y1)
{
    x1 = std::min(x1, gridW);
    y1 = std::min(y1, gridH);
    for (std::uint32_t y = y0; y < y1; ++y)
        for (std::uint32_t x = x0; x < x1; ++x)
            at(x, y) = 1.0f;
}

void
OccupancyGrid2D::scatterObstacles(tartan::sim::Rng &rng, double density,
                                  std::uint32_t max_size)
{
    const double target =
        density * static_cast<double>(cells());
    double covered = 0.0;
    while (covered < target) {
        const std::uint32_t size =
            1 + static_cast<std::uint32_t>(rng.uniformInt(max_size));
        const std::uint32_t x =
            1 + static_cast<std::uint32_t>(rng.uniformInt(gridW - size - 2));
        const std::uint32_t y =
            1 + static_cast<std::uint32_t>(rng.uniformInt(gridH - size - 2));
        addRect(x, y, x + size, y + size);
        covered += static_cast<double>(size) * size;
    }
}

void
OccupancyGrid2D::makeHeterogeneous(tartan::sim::Rng &rng,
                                   double sparse_density,
                                   double dense_density)
{
    clearWithBorder();
    // Left half sparse.
    const double sparse_target =
        sparse_density * 0.5 * static_cast<double>(cells());
    double covered = 0.0;
    while (covered < sparse_target) {
        const std::uint32_t size =
            1 + static_cast<std::uint32_t>(rng.uniformInt(6));
        const std::uint32_t x = 1 + static_cast<std::uint32_t>(
            rng.uniformInt(gridW / 2 - size - 2));
        const std::uint32_t y = 1 + static_cast<std::uint32_t>(
            rng.uniformInt(gridH - size - 2));
        addRect(x, y, x + size, y + size);
        covered += static_cast<double>(size) * size;
    }
    // Right half dense.
    const double dense_target =
        dense_density * 0.5 * static_cast<double>(cells());
    covered = 0.0;
    while (covered < dense_target) {
        const std::uint32_t size =
            1 + static_cast<std::uint32_t>(rng.uniformInt(6));
        const std::uint32_t x = gridW / 2 + static_cast<std::uint32_t>(
            rng.uniformInt(gridW / 2 - size - 2));
        const std::uint32_t y = 1 + static_cast<std::uint32_t>(
            rng.uniformInt(gridH - size - 2));
        addRect(x, y, x + size, y + size);
        covered += static_cast<double>(size) * size;
    }
}

void
OccupancyGrid2D::makeForkedCorridors(std::uint32_t lanes)
{
    clearWithBorder();
    // Large obstacles splitting the middle band into `lanes` corridors
    // running left to right.
    const std::uint32_t band_y0 = gridH / 8;
    const std::uint32_t band_y1 = gridH - gridH / 8;
    const std::uint32_t band = band_y1 - band_y0;
    const std::uint32_t walls = lanes - 1;
    if (walls == 0)
        return;
    const std::uint32_t lane_h = band / lanes;
    for (std::uint32_t w = 0; w < walls; ++w) {
        const std::uint32_t y = band_y0 + (w + 1) * lane_h;
        addRect(gridW / 6, y, gridW - gridW / 6, y + 2);
    }
}

OccupancyGrid3D::OccupancyGrid3D(std::uint32_t width, std::uint32_t height,
                                 std::uint32_t depth,
                                 tartan::sim::Arena &arena)
    : gridW(width), gridH(height), gridD(depth),
      cellData(arena.alloc<float>(static_cast<std::size_t>(width) * height *
                                  depth))
{
    std::fill(cellData, cellData + cells(), 0.0f);
}

void
OccupancyGrid3D::makeCity(tartan::sim::Rng &rng, std::uint32_t buildings)
{
    std::fill(cellData, cellData + cells(), 0.0f);
    // Ground plane.
    for (std::uint32_t y = 0; y < gridH; ++y)
        for (std::uint32_t x = 0; x < gridW; ++x)
            at(x, y, 0) = 1.0f;
    for (std::uint32_t b = 0; b < buildings; ++b) {
        const std::uint32_t w =
            2 + static_cast<std::uint32_t>(rng.uniformInt(gridW / 8));
        const std::uint32_t h =
            2 + static_cast<std::uint32_t>(rng.uniformInt(gridH / 8));
        const std::uint32_t tall =
            2 + static_cast<std::uint32_t>(rng.uniformInt(gridD - 3));
        const std::uint32_t x0 =
            static_cast<std::uint32_t>(rng.uniformInt(gridW - w - 1));
        const std::uint32_t y0 =
            static_cast<std::uint32_t>(rng.uniformInt(gridH - h - 1));
        for (std::uint32_t z = 0; z < tall; ++z)
            for (std::uint32_t y = y0; y < y0 + h; ++y)
                for (std::uint32_t x = x0; x < x0 + w; ++x)
                    at(x, y, z) = 1.0f;
    }
}

} // namespace tartan::robotics
