/**
 * @file
 * Symbolic names for the robotics PcId instrumentation sites.
 *
 * Every load/store site the kernels report through robotics::Mem uses a
 * compile-time PcId constant from a `*_pc` namespace; this translation
 * unit names each site and the data structure behind it so the tracing
 * layer's per-PC miss profile (sim/trace) reads as "k-d tree node
 * (pointer chase)" instead of "pc121".
 */

#ifndef TARTAN_ROBOTICS_PC_NAMES_HH
#define TARTAN_ROBOTICS_PC_NAMES_HH

#include "sim/trace.hh"

namespace tartan::robotics {

/**
 * Register every robotics PcId site into @p table. Idempotent
 * (re-registration overwrites with identical entries), so callers may
 * invoke it once per machine without coordination.
 */
void registerPcSites(sim::PcTable &table = sim::PcTable::global());

} // namespace tartan::robotics

#endif // TARTAN_ROBOTICS_PC_NAMES_HH
