# Empty dependencies file for tartan_nn.
# This may be replaced when dependencies are built.
