/**
 * @file
 * FlyBot: a Pelican-like battery-powered drone doing aerial
 * photography. Anytime A* (epsilon 8 -> 1) in a 3D city grid with a
 * sophisticated heuristic that numerically integrates aerodynamic
 * drag over the remaining climb (74% of execution in the paper). The
 * Approximate tier offloads the heuristic to the NPU under the AXAR
 * supervisor. MPC control. Threads: 1 -> 4 -> 4.
 */

#include "workloads/robots.hh"

#include <algorithm>
#include <cmath>

#include "core/axar.hh"
#include "robotics/control.hh"
#include "robotics/grid.hh"
#include "robotics/raycast.hh"

namespace tartan::workloads {

using namespace tartan::robotics;

namespace {

/** FlyBot's 3D planning world: grid plus drag and wind fields. */
struct Airspace {
    OccupancyGrid3D *grid;
    /** Per-altitude drag-coefficient floor (admissible lower bound). */
    float *dragFloor;
    /** Per-cell wind resistance >= windFloor. */
    float *wind;
    double windFloor;
    std::uint32_t heuristicSamples;

    std::uint32_t w() const { return grid->width(); }
    std::uint32_t h() const { return grid->height(); }
    std::uint32_t d() const { return grid->depth(); }

    void
    decode(std::uint32_t s, std::uint32_t &x, std::uint32_t &y,
           std::uint32_t &z) const
    {
        x = s % w();
        y = (s / w()) % h();
        z = s / (w() * h());
    }

    std::uint32_t
    id(std::uint32_t x, std::uint32_t y, std::uint32_t z) const
    {
        return (z * h() + y) * w() + x;
    }

    /**
     * Exact heuristic: 3D distance scaled by the global wind floor,
     * plus the drag integral over the net climb, sampled numerically
     * along the straight line (the expensive part).
     */
    double
    exactHeuristic(Mem &mem, std::uint32_t s, std::uint32_t gx,
                   std::uint32_t gy, std::uint32_t gz, PcId pc) const
    {
        std::uint32_t x, y, z;
        decode(s, x, y, z);
        const double dx = double(x) - double(gx);
        const double dy = double(y) - double(gy);
        const double dz = double(z) - double(gz);
        const double dist = std::sqrt(dx * dx + dy * dy + dz * dz);
        // Numeric integration of the drag floor over the climb.
        double climb = 0.0;
        const double z0 = z, z1 = gz;
        for (std::uint32_t k = 0; k < heuristicSamples; ++k) {
            const double frac =
                (k + 0.5) / static_cast<double>(heuristicSamples);
            const double zz = z0 + (z1 - z0) * frac;
            const auto cell = static_cast<std::size_t>(
                std::clamp(zz, 0.0, d() - 1.0));
            const float drag = mem.loadv(dragFloor + cell, pc);
            if (z1 > z0)
                climb += drag * (z1 - z0) /
                         static_cast<double>(heuristicSamples);
            // Adaptive-quadrature bookkeeping: Simpson weights and the
            // local error estimate evaluated per sample.
            mem.execFp(14);
        }
        mem.execFp(14);
        return dist * (1.0 + windFloor) + climb;
    }

    /** Edge cost between neighbouring cells (>= the heuristic terms). */
    double
    edgeCost(Mem &mem, std::uint32_t ax, std::uint32_t ay,
             std::uint32_t az, std::uint32_t bx, std::uint32_t by,
             std::uint32_t bz, PcId pc) const
    {
        const double ex = double(ax) - double(bx);
        const double ey = double(ay) - double(by);
        const double ez = double(az) - double(bz);
        const double dist = std::sqrt(ex * ex + ey * ey + ez * ez);
        const float wind_b =
            mem.loadv(wind + grid->indexOf(bx, by, bz), pc);
        double cost = dist * (1.0 + wind_b);
        if (bz > az) {
            // True climb pays the actual (>= floor) drag.
            const float drag = dragFloor[bz];
            cost += (bz - az) * (drag + 0.05);
        }
        mem.execFp(12);
        return cost;
    }
};

/**
 * Network input encoding: the paper's six inputs are the start and goal
 * coordinates; they are supplied goal-relative (deltas plus the two
 * altitudes and the planar range), which carries the same information
 * and conditions the small 6/16/16/1 network far better.
 */
void
encodeHeuristicInput(std::uint32_t x, std::uint32_t y, std::uint32_t z,
                     std::uint32_t gx, std::uint32_t gy, std::uint32_t gz,
                     double norm, float in[6])
{
    const double dx = double(x) - double(gx);
    const double dy = double(y) - double(gy);
    const double dz = double(z) - double(gz);
    in[0] = static_cast<float>(dx * norm);
    in[1] = static_cast<float>(dy * norm);
    in[2] = static_cast<float>(dz * norm);
    in[3] = static_cast<float>(z * norm);
    in[4] = static_cast<float>(gz * norm);
    in[5] = static_cast<float>(std::sqrt(dx * dx + dy * dy) * norm);
}

} // namespace

RunResult
runFlyBot(const MachineSpec &spec, const WorkloadOptions &opt)
{
    RunResult result;
    result.robot = "FlyBot";

    Machine machine(spec, opt);
    auto &core = machine.core();
    auto &mem = machine.mem();
    Pipeline pipeline(core);
    tartan::sim::Rng rng(opt.seed + 4);
    tartan::sim::Rng nn_rng(opt.seed + 41);
    tartan::sim::Arena arena(32ull << 20);
    machine.mapArena(arena);

    const auto k_fusion = core.registerKernel("lt");
    const auto k_heur = core.registerKernel("heuristic");
    const auto k_search = core.registerKernel("wastar");
    const auto k_control = core.registerKernel("mpc");

    const auto dim_xy = std::max<std::uint32_t>(
        16, static_cast<std::uint32_t>(36 * std::sqrt(opt.scale)));
    const std::uint32_t dim_z = std::max<std::uint32_t>(8, dim_xy / 2);
    OccupancyGrid3D grid(dim_xy, dim_xy, dim_z, arena);
    grid.makeCity(rng, 14);

    Airspace air;
    air.grid = &grid;
    air.dragFloor = arena.alloc<float>(dim_z);
    air.wind = arena.alloc<float>(grid.cells());
    air.windFloor = 0.2;
    air.heuristicSamples = 96;
    for (std::uint32_t z = 0; z < dim_z; ++z)
        air.dragFloor[z] =
            0.3f + 0.5f * static_cast<float>(z) / dim_z;
    // Structured wind: smooth high-wind blobs over the city so path
    // *choice* matters (anytime iterations genuinely improve the cost).
    {
        struct Blob {
            double x, y, z, amp, inv2s2;
        };
        std::vector<Blob> blobs;
        for (int b = 0; b < 6; ++b) {
            const double sigma = dim_xy * rng.uniform(0.12, 0.25);
            blobs.push_back(Blob{rng.uniform(0.0, dim_xy),
                                 rng.uniform(0.0, dim_xy),
                                 rng.uniform(0.0, dim_z),
                                 rng.uniform(0.6, 1.6),
                                 1.0 / (2.0 * sigma * sigma)});
        }
        for (std::uint32_t z = 0; z < dim_z; ++z)
            for (std::uint32_t y = 0; y < dim_xy; ++y)
                for (std::uint32_t x = 0; x < dim_xy; ++x) {
                    double wv = air.windFloor;
                    for (const Blob &b : blobs) {
                        const double d2 = (x - b.x) * (x - b.x) +
                                          (y - b.y) * (y - b.y) +
                                          (z - b.z) * (z - b.z);
                        wv += b.amp * std::exp(-d2 * b.inv2s2);
                    }
                    air.wind[grid.indexOf(x, y, z)] =
                        static_cast<float>(wv);
                }
    }

    const std::uint32_t sx = 2, sy = 2, sz = dim_z - 3;
    const std::uint32_t gx = dim_xy - 3, gy = dim_xy - 3,
                        gz = dim_z - 4;

    SearchArrays arrays(static_cast<std::uint32_t>(grid.cells()), arena);

    auto expand = [&](Mem &m, std::uint32_t s,
                      std::vector<Successor> &out) {
        ScopedKernel scope(core, k_search);
        std::uint32_t x, y, z;
        air.decode(s, x, y, z);
        static const int dirs[6][3] = {{1, 0, 0},  {-1, 0, 0},
                                       {0, 1, 0},  {0, -1, 0},
                                       {0, 0, 1},  {0, 0, -1}};
        for (const auto &dv : dirs) {
            const std::int64_t nx = x + dv[0];
            const std::int64_t ny = y + dv[1];
            const std::int64_t nz = z + dv[2];
            m.exec(6);
            if (!grid.inBounds(nx, ny, nz))
                continue;
            const auto ux = static_cast<std::uint32_t>(nx);
            const auto uy = static_cast<std::uint32_t>(ny);
            const auto uz = static_cast<std::uint32_t>(nz);
            if (grid.read(m, ux, uy, uz, raycast_pc::map) > kOccupied)
                continue;
            out.push_back(Successor{
                air.id(ux, uy, uz),
                static_cast<float>(air.edgeCost(m, x, y, z, ux, uy, uz,
                                                raycast_pc::map))});
        }
    };

    HeuristicFn exact = [&](Mem &m, std::uint32_t s) {
        ScopedKernel scope(core, k_heur);
        return air.exactHeuristic(m, s, gx, gy, gz, astar_pc::gValue);
    };

    // --- AXAR setup: train the heuristic surrogate ------------------
    std::uint64_t surrogate_fallbacks = 0;
    std::unique_ptr<tartan::nn::Mlp> hnet;
    std::unique_ptr<HeuristicFn> approx;
    const bool use_sw_nn =
        opt.tier == SoftwareTier::Approximate && opt.softwareNeural;
    const bool use_npu = opt.tier == SoftwareTier::Approximate &&
                         machine.npu() && !use_sw_nn;
    if (use_npu || use_sw_nn) {
        tartan::nn::MlpConfig mc;
        mc.layers = {6, 16, 16, 1};
        mc.loss = tartan::nn::Loss::AsymmetricMse;
        mc.asymAlpha = 8.0f;
        mc.gradClip = 2.5f;
        mc.l2Lambda = 0.0005f;
        mc.learningRate = 0.05f;
        hnet = std::make_unique<tartan::nn::Mlp>(mc, nn_rng);

        // Offline training on a map region distinct from the
        // operational area (paper: Freiburg-map subset).
        const double norm = 1.0 / dim_xy;
        const double h_scale =
            1.0 / (dim_xy * 2.0);  // normalise targets into ~[0,1]
        Mem untraced;  // training is offline, not simulated
        const std::uint32_t samples = 4000, epochs = 250;
        std::vector<float> ins, outs;
        for (std::uint32_t i = 0; i < samples; ++i) {
            const std::uint32_t x = static_cast<std::uint32_t>(
                nn_rng.uniformInt(dim_xy));
            const std::uint32_t y = static_cast<std::uint32_t>(
                nn_rng.uniformInt(dim_xy));
            const std::uint32_t z = static_cast<std::uint32_t>(
                nn_rng.uniformInt(dim_z));
            const double target = air.exactHeuristic(
                untraced, air.id(x, y, z), gx, gy, gz, 0);
            float in[6];
            encodeHeuristicInput(x, y, z, gx, gy, gz, norm, in);
            ins.insert(ins.end(), in, in + 6);
            outs.push_back(static_cast<float>(target * h_scale));
        }
        float lr = 0.02f;
        for (std::uint32_t e = 0; e < epochs; ++e) {
            hnet->setLearningRate(lr);
            hnet->trainEpoch(ins, outs, samples);
            lr *= 0.99f;
        }

        if (use_npu)
            machine.npu()->configure(core, *hnet);
        approx = std::make_unique<HeuristicFn>(
            [&, norm, h_scale, use_npu](Mem &m, std::uint32_t s) {
                ScopedKernel scope(core, k_heur);
                std::uint32_t x, y, z;
                air.decode(s, x, y, z);
                float in[6];
                encodeHeuristicInput(x, y, z, gx, gy, gz, norm, in);
                float out[1];
                if (use_npu)
                    machine.npu()->infer(core, *hnet, in, out);
                else
                    hnet->forwardTraced(in, out, core,
                                        astar_pc::gValue);
                m.execFp(8);
                // Plausibility gate: normalised heuristics live in
                // ~[0, 1]; a glitched surrogate output falls back to
                // the exact drag integral (AXAR's safety net catches
                // mere overestimates, but not NaNs).
                if (!std::isfinite(out[0]) || out[0] < -1.0f ||
                    out[0] > 4.0f) {
                    ++surrogate_fallbacks;
                    return air.exactHeuristic(m, s, gx, gy, gz,
                                              astar_pc::gValue);
                }
                return std::max(0.0, static_cast<double>(out[0])) /
                       h_scale;
            });
    }

    // --- Perception (1 thread): LT multimodal fusion ----------------
    pipeline.serial([&] {
        ScopedPhase roi(core, "perception");
        ScopedKernel scope(core, k_fusion);
        // Stabilise object positions from two sensor modalities.
        for (int obs = 0; obs < 24; ++obs) {
            mem.loadv(air.wind + (obs * 97) % grid.cells(),
                      raycast_pc::map);
            mem.execFp(30);
        }
    });

    // --- Planning (4 threads): ATA* with/without AXAR ---------------
    core::AxarResult plan;
    pipeline.serial([&] {
        ScopedPhase roi(core, "planning");
        plan = core::anytimeAStar(mem, arrays, air.id(sx, sy, sz),
                                  air.id(gx, gy, gz), expand, exact,
                                  approx.get(), core::AxarOptions{});
    });

    // --- Control (4 threads): MPC along the first waypoints ---------
    tartan::sim::GuardedSensor gps_x(opt.faults, 0.0, double(dim_xy));
    tartan::sim::GuardedSensor gps_y(opt.faults, 0.0, double(dim_xy));
    tartan::sim::GuardedSensor gps_z(opt.faults, 0.0, double(dim_z));
    pipeline.serial([&] {
        ScopedPhase roi(core, "control");
        ScopedKernel scope(core, k_control);
        Mpc::Config mpc_cfg;
        Mpc mpc(mpc_cfg);
        Vec3 pos{double(sx), double(sy), double(sz)};
        Vec3 vel{};
        const std::size_t waypoints =
            std::min<std::size_t>(plan.finalPath.size(), 6);
        for (std::size_t wp = 1; wp < waypoints; ++wp) {
            std::uint32_t x, y, z;
            air.decode(plan.finalPath[wp], x, y, z);
            // State feedback runs through guarded altimeter/GPS
            // channels before entering the MPC solve.
            pos = Vec3{gps_x.read(pos.x), gps_y.read(pos.y),
                       gps_z.read(pos.z)};
            mpc.solve(mem, pos, vel,
                      Vec3{double(x), double(y), double(z)});
            pos = Vec3{double(x), double(y), double(z)};
        }
    });

    summarize(machine, pipeline, result);
    result.metrics["planFound"] = plan.found ? 1.0 : 0.0;
    result.metrics["planCost"] = plan.finalCost;
    result.metrics["rollbacks"] = static_cast<double>(plan.rollbacks);
    result.metrics["expansions"] =
        static_cast<double>(plan.totalExpansions);
    if (opt.faults) {
        result.metrics["faultsInjected"] =
            double(opt.faults->stats().total());
        result.metrics["recoveries"] =
            double(surrogate_fallbacks + gps_x.recoveries() +
                   gps_y.recoveries() + gps_z.recoveries());
    }
    for (std::size_t i = 0; i < plan.iterations.size(); ++i) {
        result.metrics["iter" + std::to_string(i) + "Cost"] =
            plan.iterations[i].cost;
        result.metrics["iter" + std::to_string(i) + "Exp"] =
            static_cast<double>(plan.iterations[i].expansions);
    }
    return result;
}

} // namespace tartan::workloads
