/**
 * @file
 * Tests for the deterministic fault-injection subsystem: spec parsing,
 * per-stream reproducibility, the null-hook guarantee at workload
 * level, and the sanitizing helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "sim/fault.hh"
#include "sim/report.hh"
#include "workloads/robots.hh"

namespace {

using namespace tartan::sim;
using tartan::workloads::MachineSpec;
using tartan::workloads::RunResult;
using tartan::workloads::SoftwareTier;
using tartan::workloads::WorkloadOptions;

TEST(FaultPlan, ParsesFullSpec)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse(
        "seed=7;sensor:drop=0.05,nan=0.01;mem:spike=0.001@400", plan,
        &err))
        << err;
    EXPECT_EQ(plan.seed(), 7u);
    EXPECT_DOUBLE_EQ(plan.drop.rate, 0.05);
    EXPECT_DOUBLE_EQ(plan.nan.rate, 0.01);
    EXPECT_DOUBLE_EQ(plan.memSpike.rate, 0.001);
    EXPECT_DOUBLE_EQ(plan.memSpike.mag, 400.0);
    EXPECT_TRUE(plan.sensorEnabled());
    EXPECT_FALSE(plan.surrogateEnabled());
    EXPECT_TRUE(plan.memEnabled());
    EXPECT_TRUE(plan.anyEnabled());
    // The spec echoes verbatim (manifest reproducibility).
    EXPECT_EQ(plan.spec(),
              "seed=7;sensor:drop=0.05,nan=0.01;mem:spike=0.001@400");
}

TEST(FaultPlan, DefaultsApply)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse("sensor:noise=0.1", plan));
    EXPECT_EQ(plan.seed(), 42u);      // default seed
    EXPECT_DOUBLE_EQ(plan.noise.rate, 0.1);
    EXPECT_GT(plan.noise.mag, 0.0);   // default magnitude
}

TEST(FaultPlan, EmptySpecIsNoop)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse("", plan));
    EXPECT_FALSE(plan.anyEnabled());
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    FaultPlan plan;
    std::string err;
    const char *bad[] = {
        "bogus:drop=0.1",          // unknown layer
        "sensor:warp=0.1",         // unknown fault name
        "sensor:drop=1.5",         // rate out of [0, 1]
        "sensor:drop=-0.1",        // negative rate
        "sensor:drop",             // missing '='
        "sensor:drop=0.6,nan=0.6", // sensor rates sum > 1
        "seed=x",                  // non-numeric seed
    };
    for (const char *spec : bad) {
        err.clear();
        EXPECT_FALSE(FaultPlan::parse(spec, plan, &err))
            << "accepted: " << spec;
        EXPECT_FALSE(err.empty()) << spec;
    }
}

TEST(FaultInjector, SameStreamIsReproducible)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse(
        "seed=9;sensor:drop=0.2,noise=0.2,spike=0.1@5,nan=0.1", plan));
    auto a = plan.makeInjector("DeliBot");
    auto b = plan.makeInjector("DeliBot");
    for (int i = 0; i < 500; ++i) {
        const auto ra = a->sensor(1.0, 10.0);
        const auto rb = b->sensor(1.0, 10.0);
        EXPECT_EQ(ra.kind, rb.kind);
        if (std::isfinite(ra.value) || std::isfinite(rb.value)) {
            EXPECT_DOUBLE_EQ(ra.value, rb.value);
        }
    }
    EXPECT_EQ(a->stats().sensorTotal(), b->stats().sensorTotal());
    EXPECT_GT(a->stats().sensorTotal(), 0u);
}

TEST(FaultInjector, DistinctStreamsDecorrelate)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse("seed=9;sensor:drop=0.5", plan));
    auto a = plan.makeInjector("DeliBot");
    auto b = plan.makeInjector("FlyBot");
    bool differs = false;
    for (int i = 0; i < 200 && !differs; ++i)
        differs = a->sensor(1.0, 1.0).kind != b->sensor(1.0, 1.0).kind;
    EXPECT_TRUE(differs);
}

TEST(FaultInjector, MemLayerHonorsRates)
{
    FaultPlan always;
    ASSERT_TRUE(FaultPlan::parse("mem:spike=1.0@250", always));
    auto inj = always.makeInjector("x");
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(inj->memPenalty(), Cycles(250));
    EXPECT_EQ(inj->stats().memSpikes, 10u);

    FaultPlan never;  // all-zero plan: the zero-rate hooks stay silent
    auto off = never.makeInjector("x");
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(off->memPenalty(), Cycles(0));
        EXPECT_FALSE(off->prefetchBlackout());
    }
    EXPECT_EQ(off->stats().total(), 0u);
}

TEST(Sanitize, RepairsBufferInPlace)
{
    std::vector<float> buf{0.5f, std::nanf(""), 7.0f, -3.0f,
                           std::numeric_limits<float>::infinity()};
    const std::uint64_t repaired =
        sanitizeSamples(buf.data(), buf.size(), 0.0f, 1.0f);
    EXPECT_EQ(repaired, 4u);
    for (float v : buf) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
    }
    EXPECT_FLOAT_EQ(buf[0], 0.5f);  // clean sample untouched
}

TEST(GuardedSensor, NullInjectorPassesThrough)
{
    GuardedSensor s(nullptr, 0.0, 10.0);
    EXPECT_DOUBLE_EQ(s.read(3.25), 3.25);
    EXPECT_DOUBLE_EQ(s.read(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.read(10.0), 10.0);
    EXPECT_EQ(s.faults(), 0u);
    EXPECT_EQ(s.recoveries(), 0u);
    // Out-of-range clean input still clamps (the sanitizer half).
    EXPECT_DOUBLE_EQ(s.read(12.0), 10.0);
    EXPECT_EQ(s.recoveries(), 1u);
}

TEST(GuardedSensor, RepairsInjectedFaults)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse("sensor:nan=0.5,spike=0.5@100", plan));
    auto inj = plan.makeInjector("t");
    GuardedSensor s(inj.get(), 0.0, 1.0);
    for (int i = 0; i < 200; ++i) {
        const double v = s.read(0.5);
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
    EXPECT_GT(s.faults(), 0u);
    EXPECT_GT(s.recoveries(), 0u);
}

/** Shared small-scale options for the workload-level tests. */
WorkloadOptions
smallRun()
{
    WorkloadOptions opt;
    opt.tier = SoftwareTier::Approximate;
    opt.scale = 0.25;
    opt.seed = 42;
    return opt;
}

TEST(FaultWorkload, NullHookMatchesZeroPlan)
{
    // The null-hook guarantee at workload granularity: running with no
    // injector and with an all-zero plan's injector must produce
    // identical timing and identical shared quality metrics.
    const MachineSpec spec = MachineSpec::tartan();
    const RunResult plain =
        tartan::workloads::runDeliBot(spec, smallRun());

    FaultPlan zero;
    auto inj = zero.makeInjector("DeliBot");
    WorkloadOptions opt = smallRun();
    opt.faults = inj.get();
    const RunResult hooked = tartan::workloads::runDeliBot(spec, opt);

    EXPECT_EQ(plain.wallCycles, hooked.wallCycles);
    EXPECT_EQ(plain.workCycles, hooked.workCycles);
    EXPECT_EQ(plain.instructions, hooked.instructions);
    for (const auto &[key, val] : plain.metrics) {
        ASSERT_TRUE(hooked.metrics.count(key)) << key;
        EXPECT_DOUBLE_EQ(val, hooked.metrics.at(key)) << key;
    }
    EXPECT_EQ(inj->stats().total(), 0u);
}

TEST(FaultWorkload, SamePlanIsReproducible)
{
    const MachineSpec spec = MachineSpec::tartan();
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse(
        "seed=5;sensor:drop=0.1,nan=0.05,spike=0.05@20", plan));

    RunResult runs[2];
    for (RunResult &res : runs) {
        auto inj = plan.makeInjector("DeliBot");
        WorkloadOptions opt = smallRun();
        opt.faults = inj.get();
        res = tartan::workloads::runDeliBot(spec, opt);
    }
    EXPECT_EQ(runs[0].wallCycles, runs[1].wallCycles);
    EXPECT_EQ(runs[0].instructions, runs[1].instructions);
    ASSERT_EQ(runs[0].metrics.size(), runs[1].metrics.size());
    for (const auto &[key, val] : runs[0].metrics)
        EXPECT_DOUBLE_EQ(val, runs[1].metrics.at(key)) << key;
    EXPECT_GT(runs[0].metrics.at("faultsInjected"), 0.0);
}

TEST(FaultWorkload, SurvivesSensorChaos)
{
    const MachineSpec spec = MachineSpec::tartan();
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse(
        "sensor:drop=0.2,noise=0.2@0.1,spike=0.1@20,nan=0.1", plan));
    auto inj = plan.makeInjector("DeliBot");
    WorkloadOptions opt = smallRun();
    opt.faults = inj.get();
    const RunResult res = tartan::workloads::runDeliBot(spec, opt);
    for (const auto &[key, val] : res.metrics)
        EXPECT_TRUE(std::isfinite(val)) << key;
    EXPECT_GT(res.metrics.at("faultsInjected"), 0.0);
    EXPECT_GT(res.metrics.at("recoveries"), 0.0);
}

TEST(BenchManifest, EchoesFaultPlan)
{
    // BENCH manifests always carry the effective fault spec and seed;
    // unset means the documented "none" / 0 sentinel.
    unsetenv("TARTAN_FAULTS");
    BenchReporter rep("fault_manifest_test", "n/a");
    std::ostringstream os;
    rep.writeJson(os);
    std::string err;
    EXPECT_TRUE(validateBenchJson(os.str(), &err)) << err;
    EXPECT_NE(os.str().find("\"faults\": \"none\""), std::string::npos);
    EXPECT_NE(os.str().find("\"faultSeed\": 0"), std::string::npos);
}

TEST(BenchManifest, ValidatorTypesFaultFields)
{
    const char *doc = R"({
        "bench": "x",
        "manifest": {"git": "g", "timestamp": "t", "paper": "p",
                     "faults": 3},
        "config": {}, "metrics": {}, "kernels": []
    })";
    std::string err;
    EXPECT_FALSE(validateBenchJson(doc, &err));
    EXPECT_NE(err.find("faults"), std::string::npos);
}

} // namespace
