/**
 * @file
 * PcId site-name registration.
 */

#include "robotics/pc_names.hh"

#include "robotics/astar.hh"
#include "robotics/collision.hh"
#include "robotics/control.hh"
#include "robotics/ekf.hh"
#include "robotics/icp.hh"
#include "robotics/mcl.hh"
#include "robotics/nns.hh"
#include "robotics/raycast.hh"

namespace tartan::robotics {

void
registerPcSites(sim::PcTable &table)
{
    table.add(raycast_pc::map, "raycast.map",
              "occupancy-grid cells (DDA ray walk)");
    table.add(raycast_pc::interp, "raycast.interp",
              "occupancy-grid neighbours (bilinear interpolation)");
    table.add(collision_pc::footprint, "collision.footprint",
              "footprint grid cells ((x,y,theta) collision checks)");
    table.add(collision_pc::cuboid, "collision.cuboid",
              "obstacle cuboid array (pairwise checks)");
    table.add(nns_pc::brute, "nns.brute",
              "point store (brute-force NNS scan)");
    table.add(nns_pc::kdNode, "nns.kdNode",
              "k-d tree node (pointer chase)");
    table.add(nns_pc::kdPoint, "nns.kdPoint",
              "k-d tree point payload (distance check)");
    table.add(nns_pc::lshProject, "nns.lshProject",
              "LSH projection vectors (hash computation)");
    table.add(nns_pc::lshBucket, "nns.lshBucket",
              "LSH bucket scan (VLN fast path)");
    table.add(astar_pc::gValue, "astar.gValue",
              "A* g-value array (frontier expansion)");
    table.add(astar_pc::parent, "astar.parent",
              "A* parent array (path reconstruction)");
    table.add(astar_pc::stamp, "astar.stamp",
              "A* generation stamps (lazy reset)");
    table.add(mcl_pc::particle, "mcl.particle",
              "MCL particle state/weight arrays");
    table.add(ekf_pc::state, "ekf.state",
              "EKF state vector and covariance");
    table.add(icp_pc::cloud, "icp.cloud",
              "point cloud / surfel map payload");
    table.add(control_pc::path, "control.path",
              "waypoint path (pure pursuit)");
    table.add(control_pc::mpc, "control.mpc",
              "MPC horizon state");
    table.add(control_pc::dmp, "control.dmp",
              "DMP basis centers and weights");
}

} // namespace tartan::robotics
