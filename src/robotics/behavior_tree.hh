/**
 * @file
 * Minimal behaviour-tree engine (HomeBot's planning stage).
 *
 * Sequence and Selector composites over leaf actions; ticks are cheap
 * by design (planning is not HomeBot's bottleneck) but instrumented so
 * the stage shows up in the breakdown.
 */

#ifndef TARTAN_ROBOTICS_BEHAVIOR_TREE_HH
#define TARTAN_ROBOTICS_BEHAVIOR_TREE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "robotics/trace.hh"

namespace tartan::robotics {

/** Tick outcome. */
enum class BtStatus { Success, Failure, Running };

/** Behaviour-tree node. */
class BtNode
{
  public:
    explicit BtNode(std::string name) : nodeName(std::move(name)) {}
    virtual ~BtNode() = default;

    virtual BtStatus tick(Mem &mem) = 0;

    const std::string &name() const { return nodeName; }

  private:
    std::string nodeName;
};

/** Leaf executing a callable. */
class BtAction : public BtNode
{
  public:
    using Fn = std::function<BtStatus(Mem &)>;

    BtAction(std::string name, Fn fn)
        : BtNode(std::move(name)), action(std::move(fn))
    {
    }

    BtStatus
    tick(Mem &mem) override
    {
        mem.exec(4);
        return action(mem);
    }

  private:
    Fn action;
};

/** Runs children in order; fails on the first failure. */
class BtSequence : public BtNode
{
  public:
    explicit BtSequence(std::string name) : BtNode(std::move(name)) {}

    void add(std::unique_ptr<BtNode> child)
    {
        children.push_back(std::move(child));
    }

    BtStatus
    tick(Mem &mem) override
    {
        for (auto &child : children) {
            mem.exec(2);
            const BtStatus s = child->tick(mem);
            if (s != BtStatus::Success)
                return s;
        }
        return BtStatus::Success;
    }

  private:
    std::vector<std::unique_ptr<BtNode>> children;
};

/** Runs children in order; succeeds on the first success. */
class BtSelector : public BtNode
{
  public:
    explicit BtSelector(std::string name) : BtNode(std::move(name)) {}

    void add(std::unique_ptr<BtNode> child)
    {
        children.push_back(std::move(child));
    }

    BtStatus
    tick(Mem &mem) override
    {
        for (auto &child : children) {
            mem.exec(2);
            const BtStatus s = child->tick(mem);
            if (s != BtStatus::Failure)
                return s;
        }
        return BtStatus::Failure;
    }

  private:
    std::vector<std::unique_ptr<BtNode>> children;
};

} // namespace tartan::robotics

#endif // TARTAN_ROBOTICS_BEHAVIOR_TREE_HH
