file(REMOVE_RECURSE
  "libtartan_nn.a"
)
