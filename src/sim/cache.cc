/**
 * @file
 * Set-associative cache model implementation.
 */

#include "sim/cache.hh"

#include <bit>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace tartan::sim {

Cache::Cache(const CacheParams &params)
    : config(params),
      indexing(params.indexing ? params.indexing : &defaultIndexing),
      stdIndexing(params.indexing == nullptr),
      fcpIndex(dynamic_cast<const FcpIndexing *>(indexing))
{
    TARTAN_ASSERT(config.sizeBytes % (config.assoc * config.lineBytes) == 0,
                  "cache geometry must divide evenly");
    setCount = config.sizeBytes / (config.assoc * config.lineBytes);
    TARTAN_ASSERT(std::has_single_bit(setCount),
                  "set count must be a power of two");
    lineBits = log2u(config.lineBytes);
    maxRecency = config.assoc - 1;
    lines.assign(std::size_t(setCount) * config.assoc, Line{});
    tags.assign(lines.size(), kInvalidTag);
}

std::uint64_t
Cache::regionOf(std::uint64_t line_number) const
{
    TARTAN_ASSERT(config.fcp, "regionOf requires an FCP configuration");
    return line_number >> log2u(config.fcp->regionBytes / config.lineBytes);
}

Cache::LookupResult
Cache::access(Addr addr, AccessType type, std::uint32_t size, Cycles now)
{
    const std::uint64_t line_number = addr >> lineBits;
    const std::size_t base = setIndex(line_number) * config.assoc;

    for (std::uint32_t way = 0; way < config.assoc; ++way) {
        if (tags[base + way] != line_number)
            continue;
        Line &line = lines[base + way];
        ++statsData.hits;
        LookupResult res{true, line.prefetched, 0};
        if (line.prefetched) {
            ++statsData.prefetchHits;
            if (line.readyAt > now)
                res.latePenalty = line.readyAt - now;
            line.prefetched = false;
        }
        if (type == AccessType::Store)
            line.dirty = true;
        touch(line, addr, size);
        promote(base, way);
        return res;
    }
    ++statsData.misses;
    return LookupResult{false, false};
}

bool
Cache::probe(Addr addr) const
{
    const std::uint64_t line_number = addr >> lineBits;
    const std::size_t base = setIndex(line_number) * config.assoc;
    for (std::uint32_t way = 0; way < config.assoc; ++way)
        if (tags[base + way] == line_number)
            return true;
    return false;
}

std::uint32_t
Cache::victimWay(std::size_t set_base) const
{
    const Line *set = lines.data() + set_base;
    std::uint32_t victim = 0;
    std::uint32_t best = 0;
    bool found = false;
    for (std::uint32_t way = 0; way < config.assoc; ++way) {
        const Line &line = set[way];
        if (!line.valid)
            return way;
        if (!found || line.recency > best) {
            best = line.recency;
            victim = way;
            found = true;
        }
    }
    return victim;
}

void
Cache::evictLine(Line &line)
{
    ++statsData.evictions;
    if (line.dirty)
        ++statsData.dirtyEvictions;
    if (line.prefetched)
        ++statsData.prefetchUnused;
    if (config.trackUdm) {
        statsData.udmFetchedBytes += config.lineBytes;
        statsData.udmUsedBytes +=
            4ull * static_cast<std::uint64_t>(std::popcount(line.touched));
    }
    if (evictionListener)
        evictionListener(line.lineNumber << lineBits);
    line.valid = false;
    line.touched = 0;
    tags[static_cast<std::size_t>(&line - lines.data())] = kInvalidTag;
    if (memoLine == &line)
        memoLine = nullptr;
}

Cache::Eviction
Cache::fill(Addr addr, bool prefetch, bool dirty, Cycles ready_at)
{
    const std::uint64_t line_number = addr >> lineBits;
    const std::size_t base = setIndex(line_number) * config.assoc;

    // Refilling a resident line is a no-op apart from flag updates.
    for (std::uint32_t way = 0; way < config.assoc; ++way) {
        if (tags[base + way] != line_number)
            continue;
        Line &line = lines[base + way];
        line.dirty = line.dirty || dirty;
        promote(base, way);
        return Eviction{};
    }

    return fillAbsent(base, line_number, prefetch, dirty, ready_at);
}

Cache::Eviction
Cache::fillKnownAbsent(Addr addr, bool prefetch, bool dirty,
                       Cycles ready_at)
{
    TARTAN_ASSERT(!probe(addr),
                  "fillKnownAbsent called on a resident line");
    const std::uint64_t line_number = addr >> lineBits;
    return fillAbsent(setIndex(line_number) * config.assoc, line_number,
                      prefetch, dirty, ready_at);
}

/** Victim selection + installation tail shared by the fill flavours. */
Cache::Eviction
Cache::fillAbsent(std::size_t base, std::uint64_t line_number,
                  bool prefetch, bool dirty, Cycles ready_at)
{
    const std::uint32_t way = victimWay(base);
    Line &line = lines[base + way];
    Eviction ev;
    if (line.valid) {
        ev.valid = true;
        ev.lineAddr = line.lineNumber << lineBits;
        ev.dirty = line.dirty;
        evictLine(line);
    }
    // Insertion: age every resident line (saturating at the natural LRU
    // maximum) and install the new line at MRU.
    for (std::uint32_t w = 0; w < config.assoc; ++w) {
        Line &other = lines[base + w];
        if (other.valid && other.recency < maxRecency)
            ++other.recency;
    }
    line.lineNumber = line_number;
    line.valid = true;
    line.dirty = dirty;
    line.prefetched = prefetch;
    line.touched = 0;
    line.recency = 0;
    line.readyAt = prefetch ? ready_at : 0;
    tags[base + way] = line_number;
    memoLine = &line;
    if (prefetch)
        ++statsData.prefetchFills;

    // FCP: age every same-region line in this set through m(x), making
    // regions that already occupy much of the set evict sooner. The
    // manipulated recency may exceed the natural LRU maximum (up to
    // manipCeiling) so that an over-occupying region's lines outrank
    // naturally old lines of other regions at eviction time.
    if (config.fcp) {
        const std::uint32_t ceiling = manipCeiling();
        const std::uint64_t region = regionOf(line_number);
        for (std::uint32_t w = 0; w < config.assoc; ++w) {
            Line &other = lines[base + w];
            if (w == way || !other.valid)
                continue;
            if (regionOf(other.lineNumber) == region) {
                const std::uint32_t manipulated =
                    config.fcp->apply(other.recency);
                other.recency =
                    manipulated > ceiling ? ceiling : manipulated;
            }
        }
    }
    return ev;
}

void
Cache::invalidate(Addr addr)
{
    const std::uint64_t line_number = addr >> lineBits;
    const std::size_t base = setIndex(line_number) * config.assoc;
    for (std::uint32_t way = 0; way < config.assoc; ++way) {
        if (tags[base + way] == line_number) {
            evictLine(lines[base + way]);
            return;
        }
    }
}

std::uint64_t
Cache::dirtyLines() const
{
    std::uint64_t count = 0;
    for (const Line &line : lines)
        if (line.valid && line.dirty)
            ++count;
    return count;
}

std::uint64_t
Cache::prefetchedLines() const
{
    std::uint64_t count = 0;
    for (const Line &line : lines)
        if (line.valid && line.prefetched)
            ++count;
    return count;
}

void
Cache::registerStats(StatsGroup &group) const
{
    group.addCounter("hits", &statsData.hits, "demand hits");
    group.addCounter("misses", &statsData.misses, "demand misses");
    group.addCounter("evictions", &statsData.evictions,
                     "valid lines displaced");
    group.addCounter("dirtyEvictions", &statsData.dirtyEvictions,
                     "displaced lines that were dirty");
    group.addCounter("prefetchFills", &statsData.prefetchFills,
                     "fills triggered by a prefetcher");
    group.addCounter("prefetchHits", &statsData.prefetchHits,
                     "hits on prefetched-unused lines");
    group.addCounter("prefetchUnused", &statsData.prefetchUnused,
                     "prefetched lines evicted unused");
    group.addCounter("udmFetchedBytes", &statsData.udmFetchedBytes,
                     "bytes brought in (UDM tracking)");
    group.addCounter("udmUsedBytes", &statsData.udmUsedBytes,
                     "bytes actually referenced");
    group.addDerived(
        "missRatio", [this] { return statsData.missRatio(); },
        "misses / accesses");
    group.addDerived(
        "residentDirty", [this] { return double(dirtyLines()); },
        "dirty lines currently resident");
    group.addDerived(
        "residentPrefetched", [this] { return double(prefetchedLines()); },
        "prefetched-unused lines currently resident");
}

void
Cache::setEvictionListener(EvictionListener listener)
{
    evictionListener = std::move(listener);
}

} // namespace tartan::sim
