/**
 * @file
 * Replay half of the capture-once / replay-many engine.
 *
 * replayTrace() streams a captured Core-boundary op stream (see
 * sim/capture.hh) through a fresh Machine built from an arbitrary
 * timing configuration and produces the same RunResult a direct robot
 * run under that configuration would — byte-identical counters, CPI
 * stacks and metrics — without executing any robot code. A sweep of N
 * configurations over one (robot, seed) thus costs one robot execution
 * plus N cheap replays.
 *
 * The soundness argument: deterministic addressing makes every
 * cache/prefetcher/FCP decision a pure function of the op *sequence*,
 * which the capture preserves exactly; all timing is recomputed by the
 * replay machine, and the only config-dependent op *arguments* (the
 * NPU's stall amounts) are captured as semantic events and re-expanded
 * against the replay-side NpuConfig. replayCompatible() guards the
 * boundary of that argument: knobs that change the op sequence itself
 * (vector lanes, tier, scale, seed, NPU presence, ...) must match the
 * capture; knobs that only change timing (cache geometry, prefetcher,
 * FCP, issue width, NPU sizing) may differ freely.
 */

#ifndef TARTAN_WORKLOADS_REPLAY_HH
#define TARTAN_WORKLOADS_REPLAY_HH

#include "sim/capture.hh"
#include "workloads/common.hh"

namespace tartan::workloads {

/**
 * True when a capture recorded under (@p cap_spec, @p cap_opt) can be
 * replayed under (@p spec, @p opt): every knob that shapes the op
 * sequence — vector lanes, OVEC/NPU/WT availability, software tier,
 * scale, seed, NNS and oriented-engine selection, software-neural mode
 * — matches, and neither side wires observation hooks (trace, faults,
 * host profiler) that replay cannot honour. Timing-only knobs (cache
 * geometry, line size, prefetcher, FCP, issue width, miss overlap, NPU
 * sizing/placement) are deliberately not compared.
 */
bool replayCompatible(const MachineSpec &cap_spec,
                      const WorkloadOptions &cap_opt,
                      const MachineSpec &spec,
                      const WorkloadOptions &opt);

/**
 * Re-issue @p trace against a fresh Machine built from (@p spec,
 * @p opt) and return the reconstructed RunResult. The drain loop ticks
 * the watchdog heartbeat once per record, so a replayed cell under a
 * TARTAN_TIMEOUT campaign stays live-monitored exactly like a direct
 * run (replay issues no robot code, hence no cycle-sink heartbeats of
 * its own between memory ops).
 */
RunResult replayTrace(const tartan::sim::CaptureTrace &trace,
                      const MachineSpec &spec,
                      const WorkloadOptions &opt);

} // namespace tartan::workloads

#endif // TARTAN_WORKLOADS_REPLAY_HH
